// Package hybridmr reproduces "HybridMR: A Hierarchical MapReduce
// Scheduler for Hybrid Data Centers" (Sharma, Wood, Das — ICDCS 2013) as
// a self-contained Go library.
//
// Because the paper's testbed (24 physical servers, Xen 3.4, Hadoop
// v0.22, RUBiS/TPC-W/Olio) is not reproducible directly, every substrate
// is rebuilt as a deterministic discrete-event simulation; see DESIGN.md
// for the substitution inventory. This package is the public facade: it
// re-exports the pieces a user composes — simulated clusters, the
// MapReduce framework, interactive services, the HybridMR two-phase
// scheduler — plus turnkey helpers for building hybrid deployments and
// re-running the paper's experiments.
//
// # Quick start
//
//	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
//		NativePMs: 12, VirtualHostPMs: 12, VMsPerHost: 2, Seed: 1,
//	})
//	...
//	svc, _ := dc.DeployService(hybridmr.RUBiS(), 0)
//	svc.SetClients(2000)
//	job, placement, _ := dc.System.SubmitJob(hybridmr.Sort(), 0, nil)
//	dc.RunFor(30 * time.Minute)
//
// See examples/ for runnable programs and internal/experiments for the
// paper's full evaluation.
package hybridmr

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/critpath"
	"repro/internal/dfs"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/perfstat"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported building blocks. The facade names the pieces a downstream
// user needs without reaching into internal packages.
type (
	// Cluster is the simulated data center.
	Cluster = cluster.Cluster
	// PM and VM are physical and virtual machines.
	PM = cluster.PM
	VM = cluster.VM
	// JobSpec describes a MapReduce job's workload shape.
	JobSpec = mapred.JobSpec
	// Job is a submitted MapReduce job.
	Job = mapred.Job
	// JobTracker is the MapReduce framework instance.
	JobTracker = mapred.JobTracker
	// Service is a deployed interactive application.
	Service = workload.Service
	// ServiceSpec describes an interactive application.
	ServiceSpec = workload.ServiceSpec
	// System is the HybridMR two-phase scheduler.
	System = core.System
	// SystemConfig tunes the scheduler.
	SystemConfig = core.Config
	// Placement says which partition a job ran on.
	Placement = core.Placement
	// Recorder samples utilization and integrates energy.
	Recorder = metrics.Recorder
	// MigrationStats reports a completed live VM migration.
	MigrationStats = cluster.MigrationStats
	// Rig is a pre-wired single-partition testbed.
	Rig = testbed.Rig
	// RigOptions shapes a Rig.
	RigOptions = testbed.Options
	// Experiment is one of the paper's figures.
	Experiment = experiments.Experiment
	// Tracer records structured spans and instant events from every
	// layer of the simulation; export with WriteChromeTrace or
	// WriteJSONL.
	Tracer = trace.Tracer
	// MetricsRegistry collects counters, gauges and histograms.
	MetricsRegistry = trace.Registry
	// MetricsSnapshot is a point-in-time, mergeable view of a registry.
	MetricsSnapshot = trace.Snapshot
	// AuditLog records every scheduling, migration and fault-recovery
	// decision with its candidates and rationale; export with WriteJSONL.
	AuditLog = audit.Log
	// AuditRecord is one audited decision.
	AuditRecord = audit.Record
	// AuditCandidate is one alternative a decision weighed.
	AuditCandidate = audit.Candidate
	// CriticalPathReport is a completed job's critical-path profile; see
	// Job.CriticalPath.
	CriticalPathReport = critpath.Report
	// CriticalPathStep is one task on the critical path.
	CriticalPathStep = critpath.Step
	// TraceFormat selects a trace export encoding.
	TraceFormat = trace.ExportFormat
	// FaultInjector injects seed-deterministic failures (machine
	// crashes, VM crashes, tracker hangs, block loss, stragglers) into a
	// deployment, driven by the simulation clock.
	FaultInjector = fault.Injector
	// FaultOptions arms a FaultInjector with a declarative schedule
	// and/or a rate-based chaos profile.
	FaultOptions = fault.Options
	// FaultProfile is a rate-based chaos description (events per
	// simulated hour, per kind).
	FaultProfile = fault.Profile
	// ScheduledFault is one declarative injection at a fixed time.
	ScheduledFault = fault.ScheduledFault
	// FaultKind names a fault class.
	FaultKind = fault.Kind
	// PerfStats collects algorithmic cost counters and hierarchical
	// wall-time spans from every layer of a deployment; hand one to
	// ClusterSpec.Perf or RigOptions.Perf. Nil-safe: a nil *PerfStats
	// disables all instrumentation.
	PerfStats = perfstat.Stats
	// PerfSnapshot is a point-in-time view of a PerfStats: counter map
	// plus span trees.
	PerfSnapshot = perfstat.Snapshot
	// InvariantChecker observes a running deployment and records any
	// breach of the simulator's cross-layer safety invariants (lost-data
	// reads, double-scheduled attempts, migrations committed to dead or
	// unreachable hosts, unhealed replication, job livelock). Hand one to
	// ClusterSpec.Invariants or RigOptions.Invariants and read Final()
	// after the run. Nil-safe: every method no-ops on a nil checker.
	InvariantChecker = invariant.Checker
	// InvariantViolation is one recorded invariant breach, with the last
	// audited decision before it tripped (when an AuditLog was wired).
	InvariantViolation = invariant.Violation
	// TimeSeriesCollector aggregates counters, gauges and histogram
	// digests into sim-clock windows with fixed memory regardless of run
	// length; hand one to ClusterSpec.TimeSeries or RigOptions.TimeSeries.
	// Nil-safe: a nil collector disables all windowed telemetry.
	TimeSeriesCollector = timeseries.Collector
	// TimeSeriesSnapshot is one series' windowed aggregates.
	TimeSeriesSnapshot = timeseries.SeriesSnapshot
	// SLOObjective is one declarative service-level objective evaluated
	// per window against the collected telemetry.
	SLOObjective = timeseries.Objective
	// SLOReport is the summary the SLO engine emits: per-objective error
	// budgets, burn-rate alert episodes and met/missed verdicts.
	SLOReport = timeseries.SLOReport
	// SLOWindowEval is one objective's evaluation of one window (the SLO
	// JSONL row).
	SLOWindowEval = timeseries.WindowEval
	// SLOAlert is one contiguous burn-rate alert episode.
	SLOAlert = timeseries.Alert
	// PolicySet is a resolved bundle of scheduling policies, one per
	// seam (Phase I placement, DRM, IPS, Phase II slots+speculation);
	// hand one to ClusterSpec.Policies or RigOptions.Policies.
	PolicySet = policy.Set
	// PolicySpec is the textual policy selection the -policy flag
	// parses; Resolve it into a PolicySet.
	PolicySpec = policy.Spec
)

// ParsePolicySpec parses the -policy command-line syntax (comma-
// separated key=value pairs: p1, drm, ips, p2, p1.overhead,
// p2.slowdown) into a PolicySpec, validating every policy name against
// the registry.
var ParsePolicySpec = policy.ParseSpec

// DefaultPolicies returns the paper's policy set.
var DefaultPolicies = policy.Default

// Policy registry listings, one per seam.
var (
	Phase1PolicyNames = policy.Phase1Names
	DRMPolicyNames    = policy.DRMNames
	IPSPolicyNames    = policy.IPSNames
	Phase2PolicyNames = policy.Phase2Names
)

// NewPerfStats builds an empty performance-attribution collector.
var NewPerfStats = perfstat.New

// NewTimeSeries builds a windowed telemetry collector; non-positive
// arguments take the defaults (10s windows, 240 of them before
// downsampling doubles the width).
var NewTimeSeries = timeseries.New

// DefaultSLOObjectives returns the simulator's stock SLO set.
var DefaultSLOObjectives = timeseries.DefaultObjectives

// EvaluateSLOs runs objectives over a collector's windows, returning the
// summary report and the per-window evaluation rows.
var EvaluateSLOs = timeseries.Evaluate

// NewInvariantChecker builds an unattached safety-invariant checker.
var NewInvariantChecker = invariant.New

// Fault kinds.
const (
	FaultPMCrash     = fault.PMCrash
	FaultPMRepair    = fault.PMRepair
	FaultVMCrash     = fault.VMCrash
	FaultTrackerHang = fault.TrackerHang
	FaultBlockLoss   = fault.BlockLoss
	FaultStraggler   = fault.Straggler
	// Correlated fault kinds; these require a topology (ClusterSpec.Racks
	// / ClusterSpec.PowerDomains, or RigOptions equivalents) and fail all
	// machines in the chosen domain atomically.
	FaultRackCrash        = fault.RackCrash
	FaultPowerDomainCrash = fault.PowerDomainCrash
	FaultNetPartition     = fault.NetPartition
)

// ParseFaultProfile parses the -faults command-line syntax (comma-
// separated key=value pairs) into a FaultProfile.
var ParseFaultProfile = fault.ParseProfile

// NewTracer builds an unbound tracer; hand it to ClusterSpec.Tracer or
// RigOptions.Tracer and its clock is bound to the simulation engine when
// the cluster is assembled.
func NewTracer() *Tracer { return trace.New(nil) }

// NewMetricsRegistry builds an empty metrics registry.
var NewMetricsRegistry = trace.NewRegistry

// NewAuditLog builds a decision log holding up to capacity records
// (<= 0 uses a generous default); hand it to ClusterSpec.Audit or
// RigOptions.Audit and its clock is bound to the simulation engine when
// the cluster is assembled.
var NewAuditLog = audit.New

// Trace export formats.
const (
	TraceFormatChrome = trace.FormatChrome
	TraceFormatJSONL  = trace.FormatJSONL
)

// Placements.
const (
	PlacedNative  = core.PlacedNative
	PlacedVirtual = core.PlacedVirtual
)

// Resource dimensions, for Recorder queries.
const (
	CPU    = resource.CPU
	Memory = resource.Memory
	DiskIO = resource.DiskIO
	NetIO  = resource.NetIO
)

// The paper's six MapReduce benchmarks.
var (
	Twitter  = workload.Twitter
	Wcount   = workload.Wcount
	PiEst    = workload.PiEst
	DistGrep = workload.DistGrep
	Sort     = workload.Sort
	Kmeans   = workload.Kmeans
	// Benchmarks returns all six in figure order.
	Benchmarks = workload.Benchmarks
)

// The paper's three interactive applications.
var (
	RUBiS = workload.RUBiS
	TPCW  = workload.TPCW
	Olio  = workload.Olio
)

// NewRig builds a single-partition testbed (native, virtual, Dom-0 or
// split architecture) — the shape used by the paper's Section II
// analyses.
var NewRig = testbed.New

// Experiments returns the paper's figure reproductions in paper order.
var Experiments = experiments.All

// ExtensionExperiments returns the beyond-the-paper studies: the named
// future-work directions (iterative/in-memory MapReduce), an open
// arrival-stream comparison, and ablations of HybridMR's design choices.
var ExtensionExperiments = experiments.Extensions

// ExperimentByID finds one figure reproduction, e.g. "fig8b".
var ExperimentByID = experiments.ByID

// SetExperimentScale shrinks experiment input sizes (1 = the paper's
// sizes) for quick exploratory runs.
func SetExperimentScale(scale float64) { experiments.Scale = scale }

// ClusterSpec describes a hybrid deployment: a native MapReduce
// partition, a virtualized partition whose VMs host both MapReduce
// workers and interactive services, and the HybridMR scheduler over both.
type ClusterSpec struct {
	// NativePMs is the physical partition size (0 = virtual-only).
	NativePMs int
	// VirtualHostPMs is the number of PMs hosting VMs (0 = native-only).
	VirtualHostPMs int
	// VMsPerHost is the VM density (default 2, the paper's layout).
	VMsPerHost int
	// Racks > 0 assigns each partition's PMs to that many racks in
	// contiguous runs (machines in one rack sit behind one top-of-rack
	// switch). A topology enables rack-aware DFS replica placement and
	// the correlated fault kinds FaultRackCrash and FaultNetPartition.
	// Both partitions share rack labels: rack-0 holds native and virtual
	// machines alike, so a rack failure cuts across partitions, as a
	// shared facility implies. Zero leaves the deployment topology-free.
	Racks int
	// PowerDomains > 0 stripes each partition's PMs round-robin across
	// that many power domains (PDUs cross-cut racks, feeding one machine
	// per chassis row), enabling FaultPowerDomainCrash. Zero leaves the
	// power topology unassigned.
	PowerDomains int
	// Seed fixes all randomized behaviour.
	Seed int64
	// Config tunes the HybridMR scheduler (zero = paper defaults).
	Config SystemConfig
	// Policies selects a controller implementation per seam — Phase I
	// placement, DRM balancing, IPS arbitration, Phase II slot
	// assignment and speculation. Nil (or Config.Policies when this is
	// nil) takes the paper's defaults; resolve one from -policy syntax
	// with ParsePolicySpec + Resolve.
	Policies *PolicySet
	// VanillaHadoop disables HybridMR's Phase II behaviours on the
	// virtual partition (static slot containers remain), for baseline
	// comparisons.
	VanillaHadoop bool
	// Tracer, when non-nil, records structured events from every layer
	// of the deployment. Its clock is bound to the cluster's engine.
	Tracer *Tracer
	// Metrics, when non-nil, receives the deployment's counters, gauges
	// and histograms.
	Metrics *MetricsRegistry
	// Faults, when non-nil, arms the deployment's fault injector with
	// the given schedule and/or chaos profile, spanning both partitions.
	// A zero Faults.Seed derives one from Seed.
	Faults *FaultOptions
	// Audit, when non-nil, records every Phase I placement, Phase II
	// scheduling action, migration and fault-recovery decision made by
	// the deployment. Its clock is bound to the cluster's engine.
	Audit *AuditLog
	// Perf, when non-nil, collects algorithmic cost counters and
	// wall-time spans from every layer of the deployment. When nil but
	// Metrics is set, the deployment creates its own collector so
	// counter increments surface in the registry (as perfstat.*
	// counters, flushed by RunFor/RunUntilIdle). Collectors must not be
	// shared across concurrently running deployments.
	Perf *PerfStats
	// Invariants, when non-nil, is attached to every layer of the
	// deployment (both partitions and the fault injector) as a runtime
	// safety-invariant checker; read its Final() after the run. Checkers
	// are per-deployment, like Perf.
	Invariants *InvariantChecker
	// TimeSeries, when non-nil, attaches a windowed telemetry collector
	// to every layer of the deployment: per-service latency and
	// SLA-violation series, per-job slot-wait histograms, task-queue
	// depths, migration and power churn, and the engine's occupancy
	// gauges. Pair with NewRecorder so probe-backed series get sampled.
	// Collectors are per-deployment, like Perf.
	TimeSeries *TimeSeriesCollector
	// SampleInterval sets the cadence of recorders built by NewRecorder
	// when its interval argument is zero (default 10s). Each sample costs
	// 56 bytes regardless of PM count.
	SampleInterval time.Duration
}

// HybridCluster is a ready-to-use hybrid data center running HybridMR.
type HybridCluster struct {
	// System is the HybridMR scheduler; submit jobs through it.
	System *System
	// Cluster is the underlying hardware model.
	Cluster *Cluster
	// NativeJT and VirtualJT are the two MapReduce partitions (either
	// may be nil).
	NativeJT  *JobTracker
	VirtualJT *JobTracker
	// VMs are the virtual partition's worker VMs.
	VMs []*VM
	// HostPMs are the PMs hosting the virtual partition.
	HostPMs []*PM
	// Faults injects failures across both partitions; it is always
	// constructed (manual injection works on any deployment) and armed
	// only when ClusterSpec.Faults was set.
	Faults *FaultInjector
	// Perf is the deployment's performance-attribution collector (nil
	// when neither ClusterSpec.Perf nor ClusterSpec.Metrics was set).
	Perf *PerfStats

	engine         *sim.Engine
	nextSvc        int
	metricsReg     *MetricsRegistry
	perfFlushed    perfstat.Counters
	ts             *TimeSeriesCollector
	sampleInterval time.Duration
}

// NewHybridCluster assembles a hybrid data center per the spec and wires
// the HybridMR scheduler over it.
func NewHybridCluster(spec ClusterSpec) (*HybridCluster, error) {
	if spec.NativePMs <= 0 && spec.VirtualHostPMs <= 0 {
		return nil, fmt.Errorf("hybridmr: cluster needs at least one partition")
	}
	if spec.VMsPerHost <= 0 {
		spec.VMsPerHost = 2
	}

	perf := spec.Perf
	if perf == nil && spec.Metrics != nil {
		perf = perfstat.New()
	}

	hc := &HybridCluster{
		Perf: perf, metricsReg: spec.Metrics,
		ts: spec.TimeSeries, sampleInterval: spec.SampleInterval,
	}
	var engine *sim.Engine
	var cl *cluster.Cluster

	if spec.VirtualHostPMs > 0 {
		rig, err := testbed.New(testbed.Options{
			PMs:          spec.VirtualHostPMs,
			VMsPerPM:     spec.VMsPerHost,
			Racks:        spec.Racks,
			PowerDomains: spec.PowerDomains,
			Seed:         spec.Seed,
			MapredConfig: mapred.Config{
				SlotCaps:      mapred.DefaultSlotCaps(),
				CapacityAware: !spec.VanillaHadoop,
			},
			Policies:   spec.Policies,
			Tracer:     spec.Tracer,
			Metrics:    spec.Metrics,
			Audit:      spec.Audit,
			Perf:       perf,
			TimeSeries: spec.TimeSeries,
		})
		if err != nil {
			return nil, err
		}
		engine, cl = rig.Engine, rig.Cluster
		hc.VirtualJT = rig.JT
		hc.VMs = rig.VMs
		hc.HostPMs = rig.PMs
	} else {
		engine = sim.New()
		if perf != nil {
			engine.SetPerf(perf)
		}
		cl = cluster.New(engine, cluster.Config{}, spec.Seed)
		if spec.Tracer != nil || spec.Metrics != nil {
			spec.Tracer.SetClock(engine)
			cl.SetTrace(spec.Tracer, spec.Metrics)
		}
		if spec.Audit != nil {
			spec.Audit.SetClock(engine)
			cl.SetAudit(spec.Audit)
		}
		if ts := spec.TimeSeries; ts != nil {
			// The virtual-partition path registers these through the
			// testbed; a native-only deployment wires them here.
			cl.SetTimeSeries(ts)
			ts.ProbeCounter("sim.events", "", func() float64 { return float64(engine.Fired()) })
			ts.Probe("sim.pending_events", "", func() float64 { return float64(engine.Pending()) })
			ts.Probe("sim.freelist_events", "", func() float64 { return float64(engine.FreelistLen()) })
			ts.Probe("sim.cancel_debt", "", func() float64 { return float64(engine.CancelDebt()) })
		}
	}

	if spec.NativePMs > 0 {
		pms := cl.AddPMs("native", spec.NativePMs)
		cluster.StripeTopology(pms, spec.Racks, spec.PowerDomains)
		nativeFS := dfs.New(engine, dfs.Config{}, spec.Seed+13)
		nativeSched := mapred.Scheduler(mapred.Fair{})
		nativeCfg := mapred.Config{}
		if spec.Policies != nil {
			nativeSched = spec.Policies.Phase2.NewScheduler()
			sp := spec.Policies.Phase2.Speculation()
			nativeCfg.DisableSpeculation = sp.Disable
			nativeCfg.SpeculationSlowdown = sp.Slowdown
		}
		hc.NativeJT = mapred.NewJobTracker(engine, nativeFS, nativeCfg, nativeSched)
		if spec.Tracer != nil || spec.Metrics != nil {
			nativeFS.SetTrace(spec.Tracer, spec.Metrics)
			hc.NativeJT.SetTrace(spec.Tracer, spec.Metrics)
		}
		if spec.Audit != nil {
			hc.NativeJT.SetAudit(spec.Audit)
		}
		if perf != nil {
			nativeFS.SetPerf(perf)
			hc.NativeJT.SetPerf(perf)
		}
		if spec.TimeSeries != nil {
			hc.NativeJT.SetTimeSeries(spec.TimeSeries, "native")
		}
		for _, pm := range pms {
			hc.NativeJT.AddTracker(pm)
		}
	}

	cfg := spec.Config
	if spec.Policies != nil {
		cfg.Policies = spec.Policies
	}
	if spec.VanillaHadoop {
		cfg.DisableDRM = true
		cfg.DisableIPS = true
	}
	sys, err := core.NewSystem(engine, cl, hc.NativeJT, hc.VirtualJT, cfg)
	if err != nil {
		return nil, err
	}
	if spec.Tracer != nil || spec.Metrics != nil {
		sys.SetTrace(spec.Tracer, spec.Metrics)
	}
	if spec.Audit != nil {
		sys.SetAudit(spec.Audit)
	}
	if perf != nil {
		sys.SetPerf(perf)
	}
	if spec.TimeSeries != nil {
		sys.SetTimeSeries(spec.TimeSeries)
	}
	hc.System = sys
	hc.Cluster = cl
	hc.engine = engine

	env := fault.Env{Engine: engine, Cluster: cl}
	if hc.VirtualJT != nil {
		env.FSs = append(env.FSs, hc.VirtualJT.FS())
		env.JTs = append(env.JTs, hc.VirtualJT)
	}
	if hc.NativeJT != nil {
		env.FSs = append(env.FSs, hc.NativeJT.FS())
		env.JTs = append(env.JTs, hc.NativeJT)
	}
	faultOpts := fault.Options{Seed: spec.Seed + 2}
	if spec.Faults != nil {
		faultOpts = *spec.Faults
		if faultOpts.Seed == 0 {
			faultOpts.Seed = spec.Seed + 2
		}
	}
	hc.Faults = fault.NewInjector(env, faultOpts)
	if spec.Tracer != nil || spec.Metrics != nil {
		hc.Faults.SetTrace(spec.Tracer, spec.Metrics)
	}
	if spec.Audit != nil {
		hc.Faults.SetAudit(spec.Audit)
	}
	if perf != nil {
		hc.Faults.SetPerf(perf)
	}
	if spec.Invariants != nil {
		// One attach covering both partitions: the checker keeps the full
		// FS/JT set so its end-of-run liveness sweep sees every job.
		spec.Invariants.Attach(engine, cl, env.FSs, env.JTs, spec.Audit)
		hc.Faults.SetInvariants(spec.Invariants)
	}
	if spec.Faults != nil {
		if err := hc.Faults.Arm(); err != nil {
			return nil, err
		}
	}
	return hc, nil
}

// DeployService provisions a dedicated 1-vCPU/1-GB VM on one of the
// virtual partition's hosts (round-robin) and deploys the interactive
// application there, registered with the IPS.
func (hc *HybridCluster) DeployService(spec ServiceSpec) (*Service, error) {
	if len(hc.HostPMs) == 0 {
		return nil, fmt.Errorf("hybridmr: no virtual partition to host services")
	}
	pm := hc.HostPMs[hc.nextSvc%len(hc.HostPMs)]
	vm, err := hc.Cluster.AddVM(fmt.Sprintf("svc-%s-%d", spec.Name, hc.nextSvc), pm, 1, 1024)
	if err != nil {
		return nil, err
	}
	hc.nextSvc++
	return hc.System.DeployService(spec, vm)
}

// SubmitJob runs Phase I placement and submits the job; desiredJCT of
// zero means no deadline.
func (hc *HybridCluster) SubmitJob(spec JobSpec, desiredJCT time.Duration, onDone func(*Job)) (*Job, Placement, error) {
	return hc.System.SubmitJob(spec, desiredJCT, onDone)
}

// NewRecorder starts sampling utilization and energy on the cluster. A
// zero interval takes ClusterSpec.SampleInterval (default 10s). When the
// deployment carries a TimeSeries collector, each tick also feeds the
// cluster gauges into it and samples the registered probes.
func (hc *HybridCluster) NewRecorder(interval time.Duration) *Recorder {
	if interval <= 0 {
		interval = hc.sampleInterval
	}
	rec := metrics.NewRecorder(hc.Cluster, interval, 0)
	rec.SetTimeSeries(hc.ts)
	return rec
}

// RunFor advances simulated time by d.
func (hc *HybridCluster) RunFor(d time.Duration) {
	hc.engine.RunUntil(hc.engine.Now() + d)
	hc.FlushPerf()
}

// RunUntilIdle drains the event queue (all finite work completes).
// Systems with deployed services never go idle; use RunFor instead.
func (hc *HybridCluster) RunUntilIdle() {
	hc.engine.Run()
	hc.FlushPerf()
}

// FlushPerf folds the cost-counter increments accumulated since the last
// flush into the deployment's metrics registry as perfstat.* counters.
// All counter names are materialized — including zero ones — so merged
// snapshots keep a stable key set; wall-time spans stay out of the
// registry (they are nondeterministic). RunFor and RunUntilIdle flush
// automatically.
func (hc *HybridCluster) FlushPerf() {
	if hc.metricsReg != nil {
		hc.metricsReg.Gauge("engine.pending_events").Set(float64(hc.engine.Pending()))
		hc.metricsReg.Gauge("engine.freelist_events").Set(float64(hc.engine.FreelistLen()))
		hc.metricsReg.Gauge("engine.cancel_debt").Set(float64(hc.engine.CancelDebt()))
	}
	if hc.Perf == nil || hc.metricsReg == nil {
		return
	}
	delta := hc.Perf.C.Delta(hc.perfFlushed)
	hc.perfFlushed = hc.Perf.C
	delta.Each(func(name string, v int64) {
		hc.metricsReg.Counter("perfstat." + name).Add(float64(v))
	})
}

// Now returns the current simulated time.
func (hc *HybridCluster) Now() time.Duration { return hc.engine.Now() }

// Close stops the scheduler's control loops.
func (hc *HybridCluster) Close() { hc.System.Stop() }
