package hybridmr_test

import (
	"testing"
	"time"

	hybridmr "repro"
)

func TestHybridClusterEndToEnd(t *testing.T) {
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      4,
		VirtualHostPMs: 4,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	svc, err := dc.DeployService(hybridmr.RUBiS())
	if err != nil {
		t.Fatal(err)
	}
	svc.SetClients(1500)

	var done int
	job, placement, err := dc.SubmitJob(hybridmr.Sort().WithInputMB(1024), 0, func(*hybridmr.Job) { done++ })
	if err != nil {
		t.Fatal(err)
	}
	if placement != hybridmr.PlacedNative && placement != hybridmr.PlacedVirtual {
		t.Fatalf("placement = %v", placement)
	}
	rec := dc.NewRecorder(30 * time.Second)
	dc.RunFor(2 * time.Hour)
	rec.Stop()
	if !job.Done() || done != 1 {
		t.Fatalf("job incomplete (done=%v callbacks=%d)", job.Done(), done)
	}
	if job.JCT() <= 0 {
		t.Error("JCT not recorded")
	}
	if rec.EnergyWh() <= 0 {
		t.Error("no energy recorded")
	}
	if svc.SLAViolated() {
		t.Errorf("service violating SLA at steady state: %.0f ms", svc.LatencyMs())
	}
	if dc.Now() != 2*time.Hour {
		t.Errorf("Now() = %v", dc.Now())
	}
}

func TestHybridClusterValidation(t *testing.T) {
	if _, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	// Native-only cluster has nowhere to host services.
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{NativePMs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	if _, err := dc.DeployService(hybridmr.RUBiS()); err == nil {
		t.Error("service deployed without a virtual partition")
	}
	job, placement, err := dc.SubmitJob(hybridmr.PiEst(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if placement != hybridmr.PlacedNative {
		t.Errorf("native-only placement = %v", placement)
	}
	dc.RunUntilIdle()
	if !job.Done() {
		t.Error("job incomplete")
	}
}

func TestVanillaHadoopBaselineIsSlower(t *testing.T) {
	run := func(vanilla bool) float64 {
		dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
			VirtualHostPMs: 4,
			Seed:           9,
			VanillaHadoop:  vanilla,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer dc.Close()
		job, _, err := dc.SubmitJob(hybridmr.Sort().WithInputMB(2048), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		dc.RunUntilIdle()
		if !job.Done() {
			t.Fatal("job incomplete")
		}
		return job.JCT().Seconds()
	}
	vanilla := run(true)
	managed := run(false)
	if managed >= vanilla {
		t.Errorf("HybridMR (%.0fs) not faster than vanilla Hadoop (%.0fs)", managed, vanilla)
	}
}

func TestTopologyAndInvariantsFacade(t *testing.T) {
	inv := hybridmr.NewInvariantChecker()
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      4,
		VirtualHostPMs: 4,
		Racks:          2,
		PowerDomains:   2,
		Seed:           21,
		Invariants:     inv,
		Faults: &hybridmr.FaultOptions{
			Schedule: []hybridmr.ScheduledFault{
				{At: 90 * time.Second, Kind: hybridmr.FaultNetPartition, Target: "rack-1", Duration: 45 * time.Second},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	// Both partitions stripe into the same rack and power-domain labels.
	if got := dc.Cluster.Racks(); len(got) != 2 {
		t.Fatalf("Racks() = %v, want 2 labels", got)
	}
	if got := dc.Cluster.PowerDomains(); len(got) != 2 {
		t.Fatalf("PowerDomains() = %v, want 2 labels", got)
	}
	job, _, err := dc.SubmitJob(hybridmr.Sort().WithInputMB(1024), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	dc.RunFor(time.Hour)
	if !job.Done() {
		t.Fatal("job incomplete after partition healed")
	}
	if vs := inv.Final(); len(vs) > 0 {
		t.Fatalf("invariant violated: %s", vs[0])
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	exps := hybridmr.Experiments()
	if len(exps) != 25 {
		t.Fatalf("registry has %d experiments, want 25 (every figure)", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := hybridmr.ExperimentByID(e.ID); !ok {
			t.Errorf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := hybridmr.ExperimentByID("fig99"); ok {
		t.Error("ByID accepted an unknown id")
	}
}
