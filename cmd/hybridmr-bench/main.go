// Command hybridmr-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hybridmr-bench [-scale 1.0] [-parallel 8] [-only fig1a,fig8b] [-list] [-json] [-check]
//
// Each experiment prints the same rows/series the paper plots, followed
// by headline notes comparing measured numbers against the paper's
// claims. Running everything at -scale 1 takes a few minutes; smaller
// scales shrink the input data sizes proportionally.
//
// Independent sweep points within each experiment fan out across
// -parallel worker goroutines (default: GOMAXPROCS). Every sweep point
// builds its own seeded simulation, and results are assembled in a fixed
// order, so tables and notes are byte-identical at any worker count —
// only the wall-clock time changes.
//
// With -json, each experiment additionally writes a BENCH_<id>.json file
// recording its wall-clock time, simulation events fired and events per
// second, so the performance trajectory can be tracked across revisions.
// Events are attributed per experiment through engine sinks, so the
// totals stay exact even when sweep points run concurrently. Records
// also embed the experiment's merged metrics-registry snapshot (scheduler
// counters, utilization gauges, latency histogram quantiles) and, where
// the experiment surfaces them, per-benchmark critical-path summaries;
// the merge is order-independent, so these too are byte-identical at any
// worker count.
//
// With -check, every experiment's outcome is additionally judged against
// the paper-fidelity assertion suite (internal/fidelity): the headline
// claim of each figure as a machine-checkable predicate, with documented
// waivers where the simulator knowingly diverges. The verdicts are
// written to FIDELITY.json (-fidelity-out), a summary table is printed,
// and the command exits non-zero if any unwaived assertion fails. The
// fidelity report carries no timestamps, so it is byte-identical at any
// -parallel value.
//
// -baseline compares each experiment's measured events/sec against a
// committed baseline file and fails if throughput drops below a third
// of the recorded value — a coarse tripwire for order-of-magnitude
// regressions that tolerates machine-to-machine variance. The baseline
// also records deterministic scans-per-decision cost ratios derived
// from the perfstat counters (tracker×kind pairs per schedule call,
// profile entries per estimate, ...); those are guarded tightly, so a
// change that silently inflates a controller's per-decision work fails
// even when wall-clock throughput looks fine. -write-baseline
// regenerates the file from the current run.
//
// -scale-sweep switches to the controller-complexity study: the same
// weak-scaling scenario at geometrically spaced cluster sizes
// (-sweep-sizes, default 24,96,384), per-counter growth exponents
// fitted by log-log regression, and a PERF.json report (-perf-out)
// naming each controller's empirical O(n^k). The report section of
// PERF.json is byte-deterministic at any -parallel value; wall times
// live in a separate section excluded from determinism comparisons.
//
// -scale-up runs the same scenario at synthetic datacenter-scale
// operating points (-scale-up-sizes, default 2500,10000 PMs) and writes
// a SCALEUP.json report (-scale-up-out) with the same layout. It fails
// if any indexed controller (jt, drm, p1) grows faster than the
// O(n^1.2) acceptance ceiling across the points, and when -baseline is
// given it also guards each point's events/sec against the file's
// scale_up floors (-write-baseline records them, preserving the
// figure-experiment sections).
//
// -cpuprofile, -memprofile and -profile-dir wire the Go runtime
// profilers around whichever mode runs, for use with go tool pprof.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/chaossearch"
	"repro/internal/critpath"
	"repro/internal/experiments"
	"repro/internal/fidelity"
	"repro/internal/invariant"
	"repro/internal/perfstat"
	"repro/internal/policy"
	"repro/internal/policysearch"
	"repro/internal/progress"
	"repro/internal/report"
	"repro/internal/scalesweep"
	"repro/internal/trace"
)

// benchRecord is the machine-readable per-experiment performance report
// written by -json.
type benchRecord struct {
	Name         string  `json:"name"`
	Scale        float64 `json:"scale"`
	Parallel     int     `json:"parallel"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsFired  uint64  `json:"events_fired"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Metrics is the experiment's merged metrics-registry snapshot:
	// counters and histogram buckets summed across sweep points, gauges
	// taking the max. Deterministic at any -parallel value.
	Metrics trace.Snapshot `json:"metrics"`
	// CritPaths holds per-benchmark critical-path digests where the
	// experiment computes them (e.g. fig1a's native runs).
	CritPaths map[string]critpath.Summary `json:"critical_paths,omitempty"`
}

func writeBenchJSON(rec benchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+rec.Name+".json", append(data, '\n'), 0o644)
}

// baselineFile is the committed throughput floor: events/sec per
// experiment, recorded at a known scale. The guard trips only below
// baseline/baselineTolerance, so routine machine variance passes.
type baselineFile struct {
	Scale        float64            `json:"scale"`
	EventsPerSec map[string]float64 `json:"events_per_sec"`
	// CostRatios records per-experiment scans-per-decision ratios from
	// the perfstat cost counters (e.g. tracker×kind pairs scanned per
	// schedule call). Unlike events/sec these are deterministic, so the
	// guard is tight: a change that silently inflates a ratio beyond
	// costRatioTolerance × baseline fails the comparison. Lower is
	// always fine — that is an algorithmic improvement.
	CostRatios map[string]map[string]float64 `json:"cost_ratios,omitempty"`
	// ScaleUp records events/sec per datacenter-scale operating point
	// ("pm2500", "pm10000") from the -scale-up suite, guarded with the
	// same baselineTolerance floor as the figure experiments. Written by
	// -scale-up -write-baseline, which leaves the sections above intact
	// (and vice versa).
	ScaleUp map[string]float64 `json:"scale_up,omitempty"`
	// PolicySearch records the policy-search sweep's events/sec, guarded
	// with the same baselineTolerance floor. Written by -policy-search
	// -write-baseline, preserving every other section (and vice versa).
	PolicySearch float64 `json:"policy_search,omitempty"`
}

const baselineTolerance = 3.0

// costRatioTolerance bounds scans-per-decision inflation. Ratios are
// deterministic, but legitimate workload reshaping (new assertions, new
// sweep points) moves them moderately; 1.5× catches complexity-class
// slips without tripping on tuning.
const costRatioTolerance = 1.5

// costRatioDefs derives the tracked scans-per-decision ratios from a
// metrics snapshot: numerator and denominator are perfstat counters.
var costRatioDefs = []struct {
	name string
	num  string
	den  string
}{
	{"jt.pairs_per_schedule", "perfstat.jt.pairs_scanned", "perfstat.jt.schedule_calls"},
	{"drm.nodes_per_sweep", "perfstat.drm.nodes_scanned", "perfstat.drm.sweeps"},
	{"p1.entries_per_estimate", "perfstat.p1.profile_entries_scanned", "perfstat.p1.estimates"},
	{"dfs.draws_per_block", "perfstat.dfs.placement_draws", "perfstat.dfs.blocks_placed"},
}

// costRatios extracts the defined ratios where the denominator engaged.
func costRatios(m trace.Snapshot) map[string]float64 {
	out := make(map[string]float64)
	for _, d := range costRatioDefs {
		den := m.Counters[d.den]
		if den <= 0 {
			continue
		}
		out[d.name] = m.Counters[d.num] / den
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridmr-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hybridmr-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "input-size scale factor (1 = paper sizes)")
	parallel := fs.Int("parallel", 0, "worker goroutines per experiment (0 = GOMAXPROCS)")
	only := fs.String("only", "", "comma-separated experiment ids (default: all)")
	ext := fs.Bool("ext", false, "include the extension and ablation experiments")
	list := fs.Bool("list", false, "list experiment ids and exit")
	jsonOut := fs.Bool("json", false, "write BENCH_<id>.json perf records")
	check := fs.Bool("check", false, "run the paper-fidelity assertion suite (implies -ext)")
	fidelityOut := fs.String("fidelity-out", "FIDELITY.json", "fidelity report path (with -check)")
	baselinePath := fs.String("baseline", "", "compare events/sec against this baseline file")
	writeBaseline := fs.Bool("write-baseline", false, "write the -baseline file from this run instead of comparing")
	chaosSearch := fs.Bool("chaos-search", false, "run the chaos search (random correlated-fault schedules through the invariant checker) instead of the figure experiments")
	chaosBudget := fs.Int("chaos-budget", 200, "number of random schedules to try (with -chaos-search)")
	chaosSeed := fs.Int64("chaos-seed", 1, "search seed; fixes every generated schedule (with -chaos-search)")
	chaosOut := fs.String("chaos-out", "CHAOS.json", "chaos report path (with -chaos-search)")
	chaosReplay := fs.String("chaos-replay", "", "replay a minimized CHAOS.json repro instead of searching")
	chaosBreak := fs.Bool("chaos-break-recovery", false, "disable map re-execution under the search, to prove the harness catches a broken recovery path")
	scaleSweep := fs.Bool("scale-sweep", false, "run the controller-complexity scale sweep instead of the figure experiments")
	sweepSizes := fs.String("sweep-sizes", "", "comma-separated total-PM counts for -scale-sweep (default 24,96,384)")
	sweepSeed := fs.Int64("sweep-seed", 1, "base seed for -scale-sweep")
	perfOut := fs.String("perf-out", "PERF.json", "scale-sweep report path (with -scale-sweep)")
	policySearch := fs.Bool("policy-search", false, "sweep the policy registry for the JCT/energy/SLA Pareto frontier instead of the figure experiments")
	searchGrid := fs.String("search-grid", "smoke", "candidate grid for -policy-search: smoke, full or random")
	searchSamples := fs.Int("search-samples", 24, "random-grid size (with -search-grid random)")
	searchSeed := fs.Int64("search-seed", 11, "scenario seed for -policy-search; every candidate runs the same seed")
	searchOut := fs.String("search-out", "SEARCH.json", "policy-search report path (with -policy-search)")
	searchReport := fs.String("search-report", "", "also write a policy-search observatory HTML to this path (with -policy-search)")
	scaleUp := fs.Bool("scale-up", false, "run the datacenter-scale operating points instead of the figure experiments")
	scaleUpSizes := fs.String("scale-up-sizes", "", "comma-separated total-PM counts for -scale-up (default 2500,10000)")
	scaleUpOut := fs.String("scale-up-out", "SCALEUP.json", "scale-up report path (with -scale-up)")
	progressOn := fs.Bool("progress", false, "print a live wall-clock heartbeat (completed points, events/sec, ETA) to stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	profileDir := fs.String("profile-dir", "", "write cpu.pprof and mem.pprof into this directory (overrides -cpuprofile/-memprofile)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := perfstat.StartProfiles(*cpuprofile, *memprofile, *profileDir)
	if err != nil {
		return err
	}
	profilesStopped := false
	stopProf := func() error {
		if profilesStopped {
			return nil
		}
		profilesStopped = true
		return stopProfiles()
	}
	defer stopProf()
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Extensions() {
			fmt.Fprintf(stdout, "%-16s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *writeBaseline && *baselinePath == "" {
		return fmt.Errorf("-write-baseline needs -baseline <path>")
	}
	experiments.Scale = *scale
	experiments.Parallelism = *parallel

	// The heartbeat prints to stderr from its own goroutine and reads
	// only atomic state, so it cannot disturb any deterministic output.
	var pr *progress.Reporter
	if *progressOn {
		pr = progress.Start(os.Stderr, "bench", 0, 0)
		defer pr.Stop()
	}

	if *chaosReplay != "" {
		if err := runChaosReplay(*chaosReplay, stdout); err != nil {
			return err
		}
		return stopProf()
	}
	if *chaosSearch {
		if err := runChaosSearch(*chaosSeed, *chaosBudget, *chaosBreak, *chaosOut, stdout); err != nil {
			return err
		}
		return stopProf()
	}
	if *scaleSweep {
		sizes, err := parseSizes(*sweepSizes)
		if err != nil {
			return err
		}
		if err := runScaleSweep(sizes, *sweepSeed, *perfOut, pr, stdout); err != nil {
			return err
		}
		return stopProf()
	}
	if *policySearch {
		if err := runPolicySearch(*searchGrid, *searchSamples, *searchSeed, *searchOut, *searchReport, *baselinePath, *writeBaseline, pr, stdout); err != nil {
			return err
		}
		return stopProf()
	}
	if *scaleUp {
		sizes, err := parseSizes(*scaleUpSizes)
		if err != nil {
			return err
		}
		if sizes == nil {
			sizes = scalesweep.DefaultScaleUpSizes()
		}
		if err := runScaleUp(sizes, *sweepSeed, *scaleUpOut, *baselinePath, *writeBaseline, pr, stdout); err != nil {
			return err
		}
		return stopProf()
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
		// The fidelity gate covers the extensions too: every registered
		// experiment must face its assertions.
		if *ext || *check {
			selected = append(selected, experiments.Extensions()...)
		}
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	report := &fidelity.Report{Scale: *scale}
	measured := make(map[string]float64, len(selected))
	ratios := make(map[string]map[string]float64, len(selected))
	pr.SetTotal(int64(len(selected)))
	for _, e := range selected {
		start := time.Now()
		outcome, err := e.Run()
		if err != nil {
			if *check {
				// The gate reports a broken experiment as a failure
				// rather than aborting the remaining figures.
				report.Add(fidelity.FigureResult{ID: e.ID, Error: err.Error()})
				fmt.Fprintf(stdout, "%s: ERROR: %v\n\n", e.ID, err)
				continue
			}
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		wall := time.Since(start).Seconds()
		outcome.Fprint(stdout)
		fmt.Fprintf(stdout, "  (%s completed in %.1fs wall time)\n\n", e.ID, wall)
		if wall > 0 {
			measured[e.ID] = float64(outcome.EventsFired) / wall
		}
		if r := costRatios(outcome.Metrics); r != nil {
			ratios[e.ID] = r
		}
		if *jsonOut {
			// EventsFired comes from the experiment's own engine sinks,
			// not a process-global delta, so concurrent experiments (or
			// nested training simulations) never bleed into each other.
			rec := benchRecord{
				Name: e.ID, Scale: *scale, Parallel: experiments.Workers(),
				WallSeconds: wall, EventsFired: outcome.EventsFired,
				Metrics: outcome.Metrics, CritPaths: outcome.CritPaths,
			}
			if wall > 0 {
				rec.EventsPerSec = measured[e.ID]
			}
			if err := writeBenchJSON(rec); err != nil {
				return fmt.Errorf("%s: write bench json: %w", e.ID, err)
			}
		}
		if *check {
			fr := fidelity.Evaluate(e.ID, outcome, *scale)
			fr.WallSeconds = wall
			fr.EventsFired = outcome.EventsFired
			report.Add(fr)
		}
		pr.Add(1)
	}

	if *baselinePath != "" {
		order := make([]string, 0, len(selected))
		for _, e := range selected {
			order = append(order, e.ID)
		}
		if err := handleBaseline(*baselinePath, *writeBaseline, *scale, order, measured, ratios, stdout); err != nil {
			return err
		}
	}
	if *check {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*fidelityOut, data, 0o644); err != nil {
			return fmt.Errorf("write fidelity report: %w", err)
		}
		report.Summary(stdout)
		if report.HasFailures() {
			return fmt.Errorf("fidelity: %d assertion(s) failed (see %s)", report.Failed, *fidelityOut)
		}
	}
	return stopProf()
}

// parseSizes parses the -sweep-sizes list; empty means the default
// geometric sequence.
func parseSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 2 {
			return nil, fmt.Errorf("bad -sweep-sizes entry %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// runScaleSweep runs the controller-complexity sweep and writes
// PERF.json. The report section of the file is byte-deterministic; the
// wall section is not, and determinism comparisons must strip it.
func runScaleSweep(sizes []int, seed int64, outPath string, pr *progress.Reporter, stdout io.Writer) error {
	if len(sizes) == 0 {
		sizes = scalesweep.DefaultSweepSizes()
	}
	pr.SetTotal(int64(len(sizes)))
	f, err := scalesweep.Run(scalesweep.Options{
		Sizes: sizes, Seed: seed,
		OnPointDone: func() { pr.Add(1) },
	})
	if err != nil {
		return err
	}
	data, err := f.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Fprintf(stdout, "Controller cost growth over cluster sizes %v (seed %d):\n", f.Report.Sizes, seed)
	for _, c := range f.Report.Controllers {
		flag := ""
		if c.Superlinear {
			flag = "  SUPERLINEAR"
		}
		fmt.Fprintf(stdout, "  %-8s %-10s driven by %-30s%s\n", c.Name, c.Complexity, c.DrivenBy, flag)
	}
	for _, w := range f.Wall {
		fmt.Fprintf(stdout, "  size %4d ran in %.2fs wall time\n", w.Size, w.WallSeconds)
	}
	fmt.Fprintf(stdout, "wrote %s\n", outPath)
	return nil
}

// runScaleUp runs the weak-scaling scenario at synthetic
// datacenter-scale operating points, writes the SCALEUP.json report
// (same byte-deterministic layout as PERF.json), enforces the indexed
// controllers' growth ceiling when more than one point ran, and guards
// each point's events/sec against the baseline's scale_up floors.
func runScaleUp(sizes []int, seed int64, outPath, baselinePath string, writeBaseline bool, pr *progress.Reporter, stdout io.Writer) error {
	pr.SetTotal(int64(len(sizes)))
	f, err := scalesweep.Run(scalesweep.Options{
		Sizes: sizes, Seed: seed,
		OnPointDone: func() { pr.Add(1) },
	})
	if err != nil {
		return err
	}
	data, err := f.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Fprintf(stdout, "Scale-up suite over PM counts %v (seed %d):\n", f.Report.Sizes, seed)
	measured := make(map[string]float64, len(f.Wall))
	for i, w := range f.Wall {
		r := f.Report.Results[i]
		eps := 0.0
		if w.WallSeconds > 0 {
			eps = float64(r.EventsFired) / w.WallSeconds
		}
		measured[fmt.Sprintf("pm%d", w.Size)] = eps
		fmt.Fprintf(stdout, "  %5d PMs: %d trackers, %d jobs, %d events in %.2fs (%.0f events/sec)\n",
			r.Size, r.Trackers, r.Jobs, r.EventsFired, w.WallSeconds, eps)
	}
	if len(f.Report.Sizes) >= 2 {
		indexed := make(map[string]bool, len(scalesweep.IndexedControllers))
		for _, name := range scalesweep.IndexedControllers {
			indexed[name] = true
		}
		var busts []string
		for _, c := range f.Report.Controllers {
			if !indexed[c.Name] {
				continue
			}
			if c.MaxExponent > scalesweep.AcceptanceCeiling {
				busts = append(busts, fmt.Sprintf("%s grows %s via %s, ceiling O(n^%.1f)",
					c.Name, c.Complexity, c.DrivenBy, scalesweep.AcceptanceCeiling))
			} else {
				fmt.Fprintf(stdout, "  growth %-4s %s via %s (ceiling O(n^%.1f)) ok\n",
					c.Name, c.Complexity, c.DrivenBy, scalesweep.AcceptanceCeiling)
			}
		}
		if len(busts) > 0 {
			return fmt.Errorf("scale-up growth regression (indexed controller past the ceiling):\n  %s",
				strings.Join(busts, "\n  "))
		}
	}
	fmt.Fprintf(stdout, "wrote %s\n", outPath)
	if baselinePath != "" {
		return handleScaleUpBaseline(baselinePath, writeBaseline, measured, stdout)
	}
	return nil
}

// handleScaleUpBaseline records or checks the per-point events/sec
// floors of the scale-up suite. Writing preserves the figure-experiment
// sections of the baseline file; the scenario does not depend on -scale,
// so no scale consistency check applies here.
func handleScaleUpBaseline(path string, write bool, measured map[string]float64, stdout io.Writer) error {
	var base baselineFile
	data, err := os.ReadFile(path)
	if err == nil {
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", path, err)
		}
	} else if !write {
		return fmt.Errorf("read baseline: %w", err)
	}
	if write {
		base.ScaleUp = measured
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			return fmt.Errorf("write baseline: %w", err)
		}
		fmt.Fprintf(stdout, "wrote scale-up floors for %d operating point(s) to %s\n", len(measured), path)
		return nil
	}
	keys := make([]string, 0, len(measured))
	for k := range measured {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regressions []string
	for _, k := range keys {
		got := measured[k]
		want, ok := base.ScaleUp[k]
		if !ok || want <= 0 {
			continue
		}
		floor := want / baselineTolerance
		if got < floor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f events/sec, floor %.0f (baseline %.0f)", k, got, floor, want))
		} else {
			fmt.Fprintf(stdout, "throughput %s: %.0f events/sec vs baseline %.0f (floor %.0f) ok\n", k, got, want, floor)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("scale-up throughput regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}

// runPolicySearch sweeps a candidate grid across the worker pool, writes
// the byte-deterministic SEARCH.json (whole-file deterministic — cmp the
// -parallel 1 and -parallel 8 outputs directly), prints the scored
// table, optionally renders a search observatory seeded with the
// winner's audit trail, and guards the sweep's events/sec against the
// baseline's policy_search floor.
func runPolicySearch(gridName string, samples int, seed int64, outPath, reportPath, baselinePath string, writeBaseline bool, pr *progress.Reporter, stdout io.Writer) error {
	var grid []policy.Spec
	switch gridName {
	case "smoke":
		grid = policysearch.SmokeGrid()
	case "full":
		grid = policysearch.FullGrid()
	case "random":
		grid = policysearch.RandomGrid(samples, seed)
	default:
		return fmt.Errorf("unknown -search-grid %q (smoke, full or random)", gridName)
	}
	pr.SetTotal(int64(len(grid)))
	start := time.Now()
	f, winnerLog, err := policysearch.Run(policysearch.Options{
		Grid: grid, Seed: seed,
		OnPointDone: func() { pr.Add(1) },
	})
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	data, err := f.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	rep := f.Report
	fmt.Fprintf(stdout, "Policy search over %d candidate(s) (%s grid, seed %d):\n", len(rep.Candidates), gridName, seed)
	var events int64
	for _, c := range rep.Candidates {
		events += c.EventsFired
		mark := " "
		if c.Pareto {
			mark = "*"
		}
		fmt.Fprintf(stdout, "  %s jct %7.1fs  energy %8.1f Wh  sla-viol %5.3f  %s\n",
			mark, c.Objectives.MeanJCTSec, c.Objectives.EnergyWh, c.Objectives.SLAViolationRate, c.Policy)
	}
	fmt.Fprintf(stdout, "frontier: %d point(s); * marks Pareto-optimal candidates\n", len(rep.Frontier))
	if rep.Winner != nil {
		fmt.Fprintf(stdout, "winner (min energy on frontier): %s\n", rep.Winner.Policy)
		fmt.Fprintf(stdout, "  %d audited decision(s) across %d (stage, action) pair(s)\n",
			rep.Winner.Decisions, len(rep.Winner.ByStage))
		if rep.Winner.FirstPlacement != "" {
			fmt.Fprintf(stdout, "  first placement: %s\n", rep.Winner.FirstPlacement)
		}
	}
	fmt.Fprintf(stdout, "wrote %s\n", outPath)

	if reportPath != "" {
		points := make([]report.SearchPoint, 0, len(rep.Candidates))
		for _, c := range rep.Candidates {
			points = append(points, report.SearchPoint{
				Policy:           c.Policy,
				MeanJCTSec:       c.Objectives.MeanJCTSec,
				EnergyWh:         c.Objectives.EnergyWh,
				SLAViolationRate: c.Objectives.SLAViolationRate,
				Pareto:           c.Pareto,
				Winner:           rep.Winner != nil && c.Policy == rep.Winner.Policy,
			})
		}
		d := report.Data{Title: "policy search (" + gridName + " grid)", Seed: seed, Search: points}
		if winnerLog != nil {
			d.Audit = winnerLog.Records()
			d.AuditDropped = winnerLog.Dropped()
		}
		var buf strings.Builder
		if err := report.Write(&buf, d); err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, []byte(buf.String()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", reportPath, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", reportPath)
	}

	eps := 0.0
	if wall > 0 {
		eps = float64(events) / wall
	}
	fmt.Fprintf(stdout, "search fired %d events in %.2fs wall time (%.0f events/sec)\n", events, wall, eps)
	if baselinePath != "" {
		return handlePolicySearchBaseline(baselinePath, writeBaseline, eps, stdout)
	}
	return nil
}

// handlePolicySearchBaseline records or checks the policy-search sweep's
// events/sec floor, preserving every other baseline section.
func handlePolicySearchBaseline(path string, write bool, eps float64, stdout io.Writer) error {
	var base baselineFile
	data, err := os.ReadFile(path)
	if err == nil {
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", path, err)
		}
	} else if !write {
		return fmt.Errorf("read baseline: %w", err)
	}
	if write {
		base.PolicySearch = eps
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			return fmt.Errorf("write baseline: %w", err)
		}
		fmt.Fprintf(stdout, "wrote policy-search floor (%.0f events/sec) to %s\n", eps, path)
		return nil
	}
	if base.PolicySearch <= 0 {
		return nil
	}
	floor := base.PolicySearch / baselineTolerance
	if eps < floor {
		return fmt.Errorf("policy-search throughput regression: %.0f events/sec, floor %.0f (baseline %.0f)",
			eps, floor, base.PolicySearch)
	}
	fmt.Fprintf(stdout, "throughput policy-search: %.0f events/sec vs baseline %.0f (floor %.0f) ok\n",
		eps, base.PolicySearch, floor)
	return nil
}

// runChaosSearch fuzzes random correlated-fault schedules through the
// runtime invariant checker, minimizes the first failure found, writes
// the byte-deterministic CHAOS.json report and fails on any violation.
func runChaosSearch(seed int64, budget int, breakRecovery bool, outPath string, stdout io.Writer) error {
	tpl := chaossearch.DefaultTemplate()
	tpl.BreakMapRecovery = breakRecovery
	rep, err := chaossearch.Search(tpl, seed, budget)
	if err != nil {
		return err
	}
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Fprintf(stdout, "chaos search: %d schedule(s) against template %s (seed %d)\n",
		budget, tpl.Name, seed)
	if rep.FailingIndex < 0 {
		fmt.Fprintf(stdout, "all invariants held; wrote %s\n", outPath)
		return nil
	}
	fmt.Fprintf(stdout, "trial %d violated invariants; minimized %d faults -> %d in %d run(s)\n",
		rep.FailingIndex, rep.OriginalFaults, len(rep.Schedule), rep.MinimizeRuns)
	printViolations(stdout, rep.Violations)
	fmt.Fprintf(stdout, "wrote repro to %s (replay with -chaos-replay %s)\n", outPath, outPath)
	return fmt.Errorf("chaos search found %d invariant violation(s)", len(rep.Violations))
}

// runChaosReplay re-runs a minimized CHAOS.json repro and reports what
// the invariant checker observes. Reproducing the recorded violation is
// still a failing exit: the repro exists to be fixed, not admired.
func runChaosReplay(path string, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := chaossearch.Load(data)
	if err != nil {
		return err
	}
	vs, err := chaossearch.Replay(rep)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replayed %d fault(s) from %s against template %s\n",
		len(rep.Schedule), path, rep.Template.Name)
	if len(vs) == 0 {
		fmt.Fprintln(stdout, "no invariant violations: the repro no longer fires (fixed?)")
		return nil
	}
	printViolations(stdout, vs)
	return fmt.Errorf("replay reproduced %d invariant violation(s)", len(vs))
}

// printViolations lists violations, truncated: the full set is in the
// JSON artifact, the console only needs the shape of the breach.
func printViolations(stdout io.Writer, vs []invariant.Violation) {
	const keep = 8
	for i, v := range vs {
		if i == keep {
			fmt.Fprintf(stdout, "  ... and %d more (see the JSON report)\n", len(vs)-keep)
			return
		}
		fmt.Fprintf(stdout, "  %s\n", v)
	}
}

// handleBaseline either records this run's throughput as the new
// baseline or compares against the committed one, failing on any
// experiment that ran more than baselineTolerance times slower.
func handleBaseline(path string, write bool, scale float64, order []string, measured map[string]float64, ratios map[string]map[string]float64, stdout io.Writer) error {
	if write {
		base := baselineFile{Scale: scale, EventsPerSec: measured, CostRatios: ratios}
		if prev, err := os.ReadFile(path); err == nil {
			var old baselineFile
			if json.Unmarshal(prev, &old) == nil {
				base.ScaleUp = old.ScaleUp
			}
		}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write baseline: %w", err)
		}
		fmt.Fprintf(stdout, "wrote throughput baseline for %d experiment(s) to %s\n", len(measured), path)
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.Scale != scale {
		return fmt.Errorf("baseline %s was recorded at scale %g, run at %g", path, base.Scale, scale)
	}
	var regressions []string
	for _, id := range order {
		got, ran := measured[id]
		want, ok := base.EventsPerSec[id]
		if !ran || !ok || want <= 0 {
			continue
		}
		floor := want / baselineTolerance
		if got < floor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f events/sec, floor %.0f (baseline %.0f)", id, got, floor, want))
		} else {
			fmt.Fprintf(stdout, "throughput %s: %.0f events/sec vs baseline %.0f (floor %.0f) ok\n", id, got, want, floor)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("throughput regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	var inflations []string
	for _, id := range order {
		got, ran := ratios[id]
		want, ok := base.CostRatios[id]
		if !ran || !ok {
			continue
		}
		for _, d := range costRatioDefs {
			g, gok := got[d.name]
			w, wok := want[d.name]
			if !gok || !wok || w <= 0 {
				continue
			}
			ceiling := w * costRatioTolerance
			if g > ceiling {
				inflations = append(inflations,
					fmt.Sprintf("%s %s: %.1f scans/decision, ceiling %.1f (baseline %.1f)", id, d.name, g, ceiling, w))
			}
		}
	}
	if len(inflations) > 0 {
		return fmt.Errorf("cost-counter inflation (scheduler doing more work per decision):\n  %s", strings.Join(inflations, "\n  "))
	}
	return nil
}
