// Command hybridmr-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hybridmr-bench [-scale 1.0] [-only fig1a,fig8b] [-list]
//
// Each experiment prints the same rows/series the paper plots, followed
// by headline notes comparing measured numbers against the paper's
// claims. Running everything at -scale 1 takes a few minutes; smaller
// scales shrink the input data sizes proportionally.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hybridmr-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hybridmr-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "input-size scale factor (1 = paper sizes)")
	only := fs.String("only", "", "comma-separated experiment ids (default: all)")
	ext := fs.Bool("ext", false, "include the extension and ablation experiments")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Extensions() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return nil
	}
	experiments.Scale = *scale

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
		if *ext {
			selected = append(selected, experiments.Extensions()...)
		}
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		outcome, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		outcome.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %.1fs wall time)\n\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}
