// Command hybridmr-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hybridmr-bench [-scale 1.0] [-parallel 8] [-only fig1a,fig8b] [-list] [-json]
//
// Each experiment prints the same rows/series the paper plots, followed
// by headline notes comparing measured numbers against the paper's
// claims. Running everything at -scale 1 takes a few minutes; smaller
// scales shrink the input data sizes proportionally.
//
// Independent sweep points within each experiment fan out across
// -parallel worker goroutines (default: GOMAXPROCS). Every sweep point
// builds its own seeded simulation, and results are assembled in a fixed
// order, so tables and notes are byte-identical at any worker count —
// only the wall-clock time changes.
//
// With -json, each experiment additionally writes a BENCH_<id>.json file
// recording its wall-clock time, simulation events fired and events per
// second, so the performance trajectory can be tracked across revisions.
// Events are attributed per experiment through engine sinks, so the
// totals stay exact even when sweep points run concurrently. Records
// also embed the experiment's merged metrics-registry snapshot (scheduler
// counters, utilization gauges, latency histogram quantiles) and, where
// the experiment surfaces them, per-benchmark critical-path summaries;
// the merge is order-independent, so these too are byte-identical at any
// worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/critpath"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// benchRecord is the machine-readable per-experiment performance report
// written by -json.
type benchRecord struct {
	Name         string  `json:"name"`
	Scale        float64 `json:"scale"`
	Parallel     int     `json:"parallel"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsFired  uint64  `json:"events_fired"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Metrics is the experiment's merged metrics-registry snapshot:
	// counters and histogram buckets summed across sweep points, gauges
	// taking the max. Deterministic at any -parallel value.
	Metrics trace.Snapshot `json:"metrics"`
	// CritPaths holds per-benchmark critical-path digests where the
	// experiment computes them (e.g. fig1a's native runs).
	CritPaths map[string]critpath.Summary `json:"critical_paths,omitempty"`
}

func writeBenchJSON(rec benchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+rec.Name+".json", append(data, '\n'), 0o644)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hybridmr-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hybridmr-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "input-size scale factor (1 = paper sizes)")
	parallel := fs.Int("parallel", 0, "worker goroutines per experiment (0 = GOMAXPROCS)")
	only := fs.String("only", "", "comma-separated experiment ids (default: all)")
	ext := fs.Bool("ext", false, "include the extension and ablation experiments")
	list := fs.Bool("list", false, "list experiment ids and exit")
	jsonOut := fs.Bool("json", false, "write BENCH_<id>.json perf records")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Extensions() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return nil
	}
	experiments.Scale = *scale
	experiments.Parallelism = *parallel

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
		if *ext {
			selected = append(selected, experiments.Extensions()...)
		}
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		outcome, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		wall := time.Since(start).Seconds()
		outcome.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %.1fs wall time)\n\n", e.ID, wall)
		if *jsonOut {
			// EventsFired comes from the experiment's own engine sinks,
			// not a process-global delta, so concurrent experiments (or
			// nested training simulations) never bleed into each other.
			rec := benchRecord{
				Name: e.ID, Scale: *scale, Parallel: experiments.Workers(),
				WallSeconds: wall, EventsFired: outcome.EventsFired,
				Metrics: outcome.Metrics, CritPaths: outcome.CritPaths,
			}
			if wall > 0 {
				rec.EventsPerSec = float64(outcome.EventsFired) / wall
			}
			if err := writeBenchJSON(rec); err != nil {
				return fmt.Errorf("%s: write bench json: %w", e.ID, err)
			}
		}
	}
	return nil
}
