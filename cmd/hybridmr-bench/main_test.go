package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownExperimentIDErrors(t *testing.T) {
	err := run([]string{"-only", "fig999"}, io.Discard)
	if err == nil {
		t.Fatal("run with an unknown -only id should error")
	}
	if !strings.Contains(err.Error(), "unknown experiment") || !strings.Contains(err.Error(), "fig999") {
		t.Fatalf("error should name the unknown id: %v", err)
	}
}

func TestListDoesNotRunExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1a", "fig11", "ext-faults", "abl-deferral"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestWriteBaselineRequiresPath(t *testing.T) {
	if err := run([]string{"-write-baseline"}, io.Discard); err == nil {
		t.Fatal("-write-baseline without -baseline should error")
	}
}

// TestFidelityReportDeterministic drives the real -check pipeline over
// two fast figures and requires the FIDELITY.json bytes to be identical
// at 1 and 8 workers — the determinism contract the CI gate depends on.
func TestFidelityReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "fid1.json"), filepath.Join(dir, "fid8.json")}
	for i, workers := range []string{"1", "8"} {
		err := run([]string{
			"-check", "-only", "fig5a,fig6c", "-scale", "0.1",
			"-parallel", workers, "-fidelity-out", paths[i],
		}, io.Discard)
		if err != nil {
			t.Fatalf("-check at %s workers: %v", workers, err)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("FIDELITY.json differs between -parallel 1 and -parallel 8:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"fig5a"`)) || !bytes.Contains(a, []byte(`"fig6c"`)) {
		t.Fatalf("report missing selected figures:\n%s", a)
	}
	if !bytes.Contains(a, []byte(`"failed": 0`)) {
		t.Fatalf("fidelity checks failed at scale 0.1:\n%s", a)
	}
}

// TestBaselineGuard exercises both directions of the throughput
// tripwire against a synthetic baseline file.
func TestBaselineGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	measured := map[string]float64{"figX": 900}
	order := []string{"figX"}

	if err := handleBaseline(path, true, 0.1, order, measured, nil, io.Discard); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	// Same throughput: passes.
	if err := handleBaseline(path, false, 0.1, order, measured, nil, io.Discard); err != nil {
		t.Fatalf("equal throughput should pass: %v", err)
	}
	// A 2x slowdown stays inside the 3x tolerance.
	if err := handleBaseline(path, false, 0.1, order, map[string]float64{"figX": 450}, nil, io.Discard); err != nil {
		t.Fatalf("2x slowdown should pass: %v", err)
	}
	// A >3x slowdown trips the guard.
	err := handleBaseline(path, false, 0.1, order, map[string]float64{"figX": 250}, nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "throughput regression") {
		t.Fatalf("4x slowdown should trip the guard, got %v", err)
	}
	// Experiments absent from the baseline are skipped, not failed.
	if err := handleBaseline(path, false, 0.1, []string{"figY"}, map[string]float64{"figY": 1}, nil, io.Discard); err != nil {
		t.Fatalf("unknown experiment should be skipped: %v", err)
	}
	// A scale mismatch refuses to compare apples to oranges.
	if err := handleBaseline(path, false, 1.0, order, measured, nil, io.Discard); err == nil {
		t.Fatal("scale mismatch should error")
	}
}

// TestCostRatioGuard exercises the scans-per-decision tripwire: a
// ratio may shrink or wobble but must not inflate past its ceiling.
func TestCostRatioGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	measured := map[string]float64{"figX": 900}
	order := []string{"figX"}
	ratioName := costRatioDefs[0].name
	base := map[string]map[string]float64{"figX": {ratioName: 100}}

	if err := handleBaseline(path, true, 0.1, order, measured, base, io.Discard); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	// Equal and improved (lower) ratios pass; so does a wobble inside
	// the 1.5x ceiling.
	for _, ok := range []float64{100, 60, 149} {
		got := map[string]map[string]float64{"figX": {ratioName: ok}}
		if err := handleBaseline(path, false, 0.1, order, measured, got, io.Discard); err != nil {
			t.Fatalf("ratio %.0f should pass: %v", ok, err)
		}
	}
	// Inflation past the ceiling trips the guard.
	got := map[string]map[string]float64{"figX": {ratioName: 151}}
	err := handleBaseline(path, false, 0.1, order, measured, got, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "cost-counter inflation") {
		t.Fatalf("inflated ratio should trip the guard, got %v", err)
	}
	// Ratios absent from the baseline (new experiments, counters that
	// did not engage) are skipped, not failed.
	missing := map[string]map[string]float64{"figY": {ratioName: 9999}}
	if err := handleBaseline(path, false, 0.1, order, measured, missing, io.Discard); err != nil {
		t.Fatalf("unknown ratio rows should be skipped: %v", err)
	}
}
