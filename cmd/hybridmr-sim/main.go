// Command hybridmr-sim drives the simulated hybrid data center and can
// record a structured trace of everything that happens inside it.
//
// Four modes:
//
//   - The default "quickstart" scenario assembles a hybrid cluster
//     (native + virtual partitions), deploys RUBiS, runs Sort and PiEst
//     through the two-phase scheduler, consolidates the VMs of one host
//     via live migration and powers the freed machine off — exercising
//     every traced subsystem in one run.
//   - "job" mode (selected with -scenario job, or implied by an explicit
//     -benchmark flag) runs a single MapReduce benchmark on a chosen
//     cluster shape, as before.
//   - "chaos" mode runs a batch of jobs on a virtual cluster while a
//     seed-deterministic fault injector crashes machines and VMs, wedges
//     TaskTrackers, corrupts DFS replicas and injects stragglers. The run
//     verifies that every job completes and the DFS heals back to target
//     replication, and prints the fault seed so any run can be replayed.
//   - "scaleup" mode runs the scale sweep's weak-scaling scenario at a
//     single datacenter-scale operating point (-pms, default 2500) and
//     prints the deterministic cost counters — a quick probe of how the
//     indexed controllers behave at sizes far past the paper's testbed.
//
// Usage:
//
//	hybridmr-sim -trace out.json -trace-format chrome -metrics
//	hybridmr-sim -report out.html -audit decisions.jsonl
//	hybridmr-sim -benchmark Sort -data-gb 8 -pms 12 -vms-per-pm 2
//	hybridmr-sim -benchmark Kmeans -pms 24            # native cluster
//	hybridmr-sim -benchmark Sort -pms 24 -dom0        # Dom-0 mode
//	hybridmr-sim -benchmark Sort -pms 24 -vms-per-pm 2 -split
//	hybridmr-sim -benchmark Sort,Kmeans,Wcount -parallel 3
//	hybridmr-sim -policy p2=fifo-p2,drm=static-split
//	hybridmr-sim -benchmark Sort -pms 12 -vms-per-pm 2 -policy p2=locality-p2
//	hybridmr-sim -scenario chaos -seed 7 -fault-seed 99
//	hybridmr-sim -scenario chaos -faults pm-crash=4,block-loss=12,repair-sec=90
//	hybridmr-sim -scenario scaleup -pms 10000
//	hybridmr-sim -benchmark Sort -pms 48 -profile-dir prof/
//	hybridmr-sim -scenario chaos -timeseries ts.jsonl -slo slo.json -progress
//
// -cpuprofile, -memprofile and -profile-dir wire the Go runtime
// profilers around the whole run (runtime/pprof format, loadable with
// `go tool pprof`). The HTML report additionally carries a performance
// attribution section: the scheduler's algorithmic cost counters and
// the hierarchical span tree collected by internal/perfstat.
//
// Job mode accepts a comma-separated benchmark list; each benchmark runs
// as its own seeded simulation, fanned across -parallel worker goroutines
// (default GOMAXPROCS) with reports printed in list order, so the output
// does not depend on the worker count. -trace, -metrics, -audit and
// -report all work with a benchmark list too: every run gets its own
// private tracer, registry and decision log, and file outputs gain a
// per-benchmark suffix (out.json becomes out-Sort.json), so concurrent
// engines never interleave and each file stays byte-deterministic.
//
// The trace file loads directly into Perfetto (ui.perfetto.dev) or
// chrome://tracing when written in the default chrome format; -trace-format
// jsonl writes one JSON event per line for ad-hoc processing. -audit
// exports the scheduler's decision log (placement, task assignment,
// speculation, DRM grants, migrations, fault recovery — with candidates
// and reasons) as JSONL. -report writes a self-contained HTML observatory:
// utilization/power timelines, a per-machine swimlane, the filterable
// audit log and per-job critical-path breakdowns, with no external
// assets. All outputs contain only simulated timestamps, so two runs with
// the same seed produce byte-identical files.
//
// -timeseries streams sim-clock-windowed telemetry (counters, gauges and
// histogram digests from the engine, scheduler, DFS and services) as
// JSONL with memory bounded regardless of horizon; -slo evaluates the
// stock service-level objectives over those windows with multi-window
// burn-rate alerting and writes the summary JSON (the report gains
// time-series charts and an SLO burn panel when these are on). Both
// outputs carry only simulated time and stay byte-deterministic.
// -progress prints a live wall-clock heartbeat (elapsed, events/sec,
// percent and ETA where known) to stderr; it reads only atomic state and
// never touches the deterministic artifacts.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	hybridmr "repro"
	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/critpath"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/perfstat"
	"repro/internal/progress"
	"repro/internal/report"
	"repro/internal/scalesweep"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridmr-sim:", err)
		os.Exit(1)
	}
}

// obsConfig is the observability surface requested on the command line.
type obsConfig struct {
	traceFile, traceFormat string
	metricsOn              bool
	auditFile              string
	reportFile             string
	tsFile                 string
	sloFile                string
}

// runObs bundles the observers of one simulation run. Multi-benchmark
// job lists build one per benchmark (with a filename suffix) so
// concurrent engines never share recording state; modes that don't need
// a given observer leave it nil, and every consumer is nil-safe.
type runObs struct {
	cfg    obsConfig
	suffix string // "" or "-<benchmark>" for job lists
	seed   int64

	tracer *trace.Tracer
	reg    *trace.Registry
	log    *audit.Log
	rec    *metrics.Recorder
	ts     *timeseries.Collector

	title  string
	simEnd time.Duration
	jobs   []report.JobPath
	perf   *perfstat.Snapshot
}

func newRunObs(cfg obsConfig, suffix string, seed int64) *runObs {
	o := &runObs{cfg: cfg, suffix: suffix, seed: seed}
	if cfg.traceFile != "" || cfg.reportFile != "" {
		o.tracer = trace.New(nil)
	}
	if cfg.metricsOn || cfg.traceFile != "" || cfg.reportFile != "" {
		o.reg = trace.NewRegistry()
	}
	if cfg.auditFile != "" || cfg.reportFile != "" {
		o.log = audit.New(0)
	}
	if cfg.tsFile != "" || cfg.sloFile != "" {
		o.ts = timeseries.New(0, 0)
	}
	return o
}

// watch attaches a utilization/power recorder to the run's cluster when
// a report or windowed telemetry was requested; the report's timeline
// view reads it back, and its ticks sample the telemetry probes.
func (o *runObs) watch(cl *cluster.Cluster) {
	if o.cfg.reportFile != "" || o.ts != nil {
		o.rec = metrics.NewRecorder(cl, 10*time.Second, 0)
		o.rec.SetTimeSeries(o.ts)
	}
}

// addJob records one completed job's critical-path digest for the
// report. A nil summary (analysis failed) is skipped.
func (o *runObs) addJob(name string, sum *critpath.Summary) {
	if sum != nil {
		o.jobs = append(o.jobs, report.JobPath{Name: name, Path: *sum})
	}
}

// snapPerf records the run's performance-attribution snapshot for the
// report's cost-counter and span-tree section. A nil collector (no
// observers requested) is skipped.
func (o *runObs) snapPerf(ps *perfstat.Stats) {
	if ps != nil {
		sn := ps.Snapshot()
		o.perf = &sn
	}
}

// suffixed inserts the per-benchmark suffix before the file extension:
// out.json -> out-Sort.json.
func suffixed(path, suffix string) string {
	if suffix == "" {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + suffix + ext
}

// finish writes every requested output for one run. The report and the
// audit export are written before the wall-clock throughput gauge is
// set, so their bytes depend only on simulated state; eventsPerSec <= 0
// (multi-benchmark runs, where process-global event counts would mix
// engines) skips the gauge entirely.
func (o *runObs) finish(out io.Writer, eventsPerSec float64) error {
	if o.rec != nil {
		o.rec.Stop()
	}
	// Evaluate SLOs once; the JSON summary, the JSONL rows and the
	// report's burn panel all read the same evaluation.
	var sloRep timeseries.SLOReport
	var sloRows []timeseries.WindowEval
	if o.cfg.sloFile != "" {
		sloRep, sloRows = timeseries.Evaluate(o.ts, timeseries.DefaultObjectives())
	}
	if o.cfg.reportFile != "" {
		d := report.Data{
			Title:        o.title,
			Seed:         o.seed,
			SimEnd:       o.simEnd,
			Events:       o.tracer.Events(),
			Audit:        o.log.Records(),
			AuditDropped: o.log.Dropped(),
			Metrics:      o.reg.Snapshot(),
			Perf:         o.perf,
			Jobs:         o.jobs,
		}
		if o.rec != nil {
			d.Samples = o.rec.Samples()
			d.EnergyWh = o.rec.EnergyWh()
		}
		if o.ts != nil {
			d.TimeSeries = o.ts.Snapshot()
		}
		if o.cfg.sloFile != "" {
			d.SLO = &sloRep
			d.SLORows = sloRows
		}
		path := suffixed(o.cfg.reportFile, o.suffix)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := report.Write(f, d); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nreport: %s (%d trace events, %d audit records, %d jobs profiled)\n",
			path, len(d.Events), len(d.Audit), len(d.Jobs))
	}
	if o.cfg.auditFile != "" {
		path := suffixed(o.cfg.auditFile, o.suffix)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := o.log.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\naudit: %d decisions -> %s\n", o.log.Len(), path)
	}
	if o.cfg.tsFile != "" {
		path := suffixed(o.cfg.tsFile, o.suffix)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		// Series windows first, then the SLO evaluation rows (when -slo is
		// on): one JSONL stream carries the full windowed record.
		if err := o.ts.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := timeseries.WriteSLOJSONL(f, sloRows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntimeseries: %d windows x %.0fs -> %s\n",
			o.ts.Windows(), o.ts.Window().Seconds(), path)
	}
	if o.cfg.sloFile != "" {
		path := suffixed(o.cfg.sloFile, o.suffix)
		data, err := sloRep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nslo: %d objective(s), %d page(s), %d ticket(s) -> %s\n",
			len(sloRep.Objectives), sloRep.Pages, sloRep.Tickets, path)
	}
	// Wall-clock throughput goes to the registry only — never into the
	// report, trace or audit files, which must stay deterministic.
	if eventsPerSec > 0 {
		o.reg.Gauge("engine.events_per_sec").Set(eventsPerSec)
	}
	if o.cfg.traceFile != "" {
		path := suffixed(o.cfg.traceFile, o.suffix)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := o.tracer.Write(f, trace.ExportFormat(o.cfg.traceFormat)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace: %d events -> %s (%s format)\n", o.tracer.Len(), path, o.cfg.traceFormat)
	}
	if o.cfg.metricsOn {
		fmt.Fprintf(out, "\nmetrics:\n")
		o.reg.Fprint(out)
	}
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hybridmr-sim", flag.ContinueOnError)
	scenario := fs.String("scenario", "", "scenario: quickstart (default), job, chaos or scaleup")
	bench := fs.String("benchmark", "Sort", "benchmark name or comma-separated list (Twitter, Wcount, PiEst, DistGrep, Sort, Kmeans)")
	parallel := fs.Int("parallel", 0, "worker goroutines for a multi-benchmark job list (0 = GOMAXPROCS)")
	dataGB := fs.Float64("data-gb", 0, "input size in GB (0 = the paper's size for the benchmark)")
	pms := fs.Int("pms", 12, "physical machines (job mode)")
	vmsPerPM := fs.Int("vms-per-pm", 0, "VMs per PM (0 = native execution; job mode)")
	dom0 := fs.Bool("dom0", false, "run native work in the privileged domain")
	split := fs.Bool("split", false, "split TaskTracker/DataNode architecture")
	slotCaps := fs.Bool("slot-caps", false, "static Hadoop slot containers")
	sched := fs.String("scheduler", "fair", "job scheduler: fair or fifo")
	policyFlag := fs.String("policy", "", "policy selections as k=v pairs, e.g. p2=fifo-p2,drm=static-split,p1.overhead=0.5 (keys: p1, drm, ips, p2, p1.overhead, p2.slowdown)")
	seed := fs.Int64("seed", 1, "simulation seed")
	faults := fs.String("faults", "", "chaos profile, e.g. pm-crash=2,vm-crash=4,block-loss=6 (chaos scenario; default moderate profile)")
	faultSeed := fs.Int64("fault-seed", 0, "fault injection seed (0 = derive from -seed)")
	invariants := fs.Bool("invariants", false, "run the safety-invariant checker over the chaos scenario and fail on any violation")
	traceFile := fs.String("trace", "", "write a structured event trace to this file")
	traceFormat := fs.String("trace-format", "chrome", "trace encoding: chrome (Perfetto-loadable) or jsonl")
	metricsOn := fs.Bool("metrics", false, "print the metrics registry after the run")
	auditFile := fs.String("audit", "", "write the scheduler decision log as JSONL to this file")
	reportFile := fs.String("report", "", "write a self-contained HTML observatory report to this file")
	tsFile := fs.String("timeseries", "", "write windowed time-series telemetry (and SLO evaluations with -slo) as JSONL to this file")
	sloFile := fs.String("slo", "", "evaluate the stock SLOs over the windowed telemetry and write the summary JSON to this file")
	progressOn := fs.Bool("progress", false, "print a live wall-clock heartbeat (events/sec, ETA) to stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a runtime/pprof heap profile to this file on exit")
	profileDir := fs.String("profile-dir", "", "write cpu.pprof and mem.pprof into this directory (overrides -cpuprofile/-memprofile)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// An explicit -benchmark keeps the pre-scenario CLI working: it
	// implies job mode unless the user also picked a scenario.
	mode := *scenario
	pmsSet, schedSet := false, false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "pms" {
			pmsSet = true
		}
		if f.Name == "scheduler" {
			schedSet = true
		}
		if f.Name == "benchmark" && mode == "" {
			mode = "job"
		}
	})
	if mode == "" {
		mode = "quickstart"
	}
	// Validate the scenario and any -policy selection before anything
	// starts (profilers, progress reporters): a typo exits non-zero
	// immediately with the registered names, instead of surfacing after
	// setup already ran.
	switch mode {
	case "quickstart", "job", "chaos", "scaleup":
	default:
		return fmt.Errorf("unknown scenario %q (registered: quickstart, job, chaos, scaleup)", mode)
	}
	var policies *hybridmr.PolicySet
	if *policyFlag != "" {
		if mode == "scaleup" {
			return fmt.Errorf("-policy does not apply to the scaleup scenario")
		}
		pspec, err := hybridmr.ParsePolicySpec(*policyFlag)
		if err != nil {
			return err
		}
		if policies, err = pspec.Resolve(); err != nil {
			return err
		}
	}

	stopProfiles, err := perfstat.StartProfiles(*cpuProfile, *memProfile, *profileDir)
	if err != nil {
		return err
	}

	cfg := obsConfig{
		traceFile: *traceFile, traceFormat: *traceFormat,
		metricsOn: *metricsOn, auditFile: *auditFile, reportFile: *reportFile,
		tsFile: *tsFile, sloFile: *sloFile,
	}

	// The heartbeat goes to stderr and reads only wall-clock state plus
	// the process-wide atomic event counter, so it can never perturb the
	// deterministic outputs.
	var pr *progress.Reporter
	if *progressOn {
		pr = progress.Start(os.Stderr, mode, 0, 0)
		defer pr.Stop()
	}

	firedBefore := sim.ProcessEvents()
	wallStart := time.Now()
	throughput := func() float64 {
		if wall := time.Since(wallStart).Seconds(); wall > 0 {
			return float64(sim.ProcessEvents()-firedBefore) / wall
		}
		return 0
	}

	runErr := func() error {
		switch mode {
		case "quickstart":
			obs := newRunObs(cfg, "", *seed)
			if err := runQuickstart(*seed, policies, obs, pr, out); err != nil {
				return err
			}
			pr.Stop()
			return obs.finish(out, throughput())
		case "job":
			return runJobs(*bench, jobOptions{
				dataGB: *dataGB, pms: *pms, vmsPerPM: *vmsPerPM,
				dom0: *dom0, split: *split, slotCaps: *slotCaps, sched: *sched, seed: *seed,
				policies: policies, schedSet: schedSet,
			}, *parallel, cfg, throughput, out)
		case "chaos":
			obs := newRunObs(cfg, "", *seed)
			if err := runChaos(*seed, *faultSeed, *faults, *invariants, policies, obs, out); err != nil {
				return err
			}
			pr.Stop()
			return obs.finish(out, throughput())
		case "scaleup":
			size := *pms
			if !pmsSet {
				size = scalesweep.DefaultScaleUpSizes()[0]
			}
			return runScaleUpPoint(size, *seed, out)
		default:
			// Unreachable: the mode was validated before setup.
			return fmt.Errorf("unknown scenario %q (registered: quickstart, job, chaos, scaleup)", mode)
		}
	}()
	// The profiles must cover the whole run, so they stop only after the
	// scenario finishes (successfully or not).
	if err := stopProfiles(); runErr == nil {
		runErr = err
	}
	return runErr
}

// runQuickstart exercises every traced subsystem: hybrid placement, task
// execution with data locality, interactive-service SLA monitoring, live
// VM migration and PM power management.
func runQuickstart(seed int64, policies *hybridmr.PolicySet, obs *runObs, pr *progress.Reporter, out io.Writer) error {
	obs.title = "quickstart"
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      4,
		VirtualHostPMs: 4,
		VMsPerHost:     2,
		Seed:           seed,
		Policies:       policies,
		Tracer:         obs.tracer,
		Metrics:        obs.reg,
		Audit:          obs.log,
		TimeSeries:     obs.ts,
	})
	if err != nil {
		return err
	}
	defer dc.Close()
	obs.watch(dc.Cluster)

	// The scenario simulates exactly 20 minutes; slicing each RunFor into
	// short chunks gives the heartbeat a completed fraction to show.
	// RunUntil(a); RunUntil(b) is identical to RunUntil(b), so slicing
	// cannot change any deterministic output.
	pr.SetTotal(int64(20 * time.Minute / time.Millisecond))
	runFor := func(d time.Duration) {
		const slice = 30 * time.Second
		for d > 0 {
			c := d
			if c > slice {
				c = slice
			}
			dc.RunFor(c)
			pr.Add(int64(c / time.Millisecond))
			d -= c
		}
	}

	svc, err := dc.DeployService(hybridmr.RUBiS())
	if err != nil {
		return err
	}
	svc.SetClients(1500)

	type submitted struct {
		job       *hybridmr.Job
		placement hybridmr.Placement
	}
	var jobs []submitted
	for _, spec := range []hybridmr.JobSpec{
		hybridmr.Sort().WithInputMB(2 * 1024),
		hybridmr.PiEst(),
	} {
		job, placement, err := dc.SubmitJob(spec, 0, nil)
		if err != nil {
			return err
		}
		jobs = append(jobs, submitted{job, placement})
	}
	runFor(10 * time.Minute)

	// Consolidate: pm-1's two worker VMs move to pm-2 and pm-3, then the
	// emptied machine powers down.
	var migErr error
	for _, move := range []struct{ vm, pm string }{{"vm-1", "pm-2"}, {"vm-5", "pm-3"}} {
		vm := vmByName(dc.VMs, move.vm)
		pm := pmByName(dc.HostPMs, move.pm)
		if vm == nil || pm == nil {
			return fmt.Errorf("quickstart: %s or %s not found", move.vm, move.pm)
		}
		if err := dc.Cluster.Migrate(vm, pm, func(st hybridmr.MigrationStats) {
			fmt.Fprintf(out, "migrated %-5s %s -> %s in %.1fs (downtime %.2fs, %.0f MB moved)\n",
				st.VM, st.From, st.To, st.TotalTime.Seconds(), st.Downtime.Seconds(), st.TransferredMB)
		}); err != nil {
			migErr = err
		}
	}
	if migErr != nil {
		return migErr
	}
	runFor(2 * time.Minute)

	if pm := pmByName(dc.HostPMs, "pm-1"); pm != nil {
		if err := pm.PowerOff(); err != nil {
			return fmt.Errorf("quickstart: power off pm-1: %w", err)
		}
		fmt.Fprintf(out, "powered off pm-1 (%d/%d PMs on)\n",
			dc.Cluster.PoweredOnPMs(), len(dc.Cluster.PMs()))
	}
	runFor(8 * time.Minute)

	fmt.Fprintf(out, "\nquickstart after %s simulated:\n", dc.Now())
	for _, s := range jobs {
		status := "running"
		if s.job.Done() {
			status = fmt.Sprintf("done, JCT %.1fs", s.job.JCT().Seconds())
			if rep, err := s.job.CriticalPath(); err == nil {
				sum := rep.Summary()
				obs.addJob(s.job.Spec.Name, &sum)
			}
		}
		fmt.Fprintf(out, "  %-8s -> %-7s partition  (%s)\n", s.job.Spec.Name, s.placement, status)
	}
	fmt.Fprintf(out, "  RUBiS    -> %.0f ms mean response (%d clients)\n",
		svc.LatencyMs(), svc.Clients())
	obs.snapPerf(dc.Perf)
	obs.simEnd = dc.Now()
	return nil
}

// runChaos runs a batch of jobs on a virtual cluster under fault
// injection: a scheduled PM crash mid-run plus rate-based chaos of every
// other kind, all drawn from the fault seed. It verifies end-to-end
// recovery — every job completes and the DFS heals back to target
// replication — and prints the seeds needed to replay the run. With
// checkInvariants, the runtime safety-invariant checker additionally
// observes every layer and the run fails on any violation.
func runChaos(seed, faultSeed int64, profileSpec string, checkInvariants bool, policies *hybridmr.PolicySet, obs *runObs, out io.Writer) error {
	obs.title = "chaos"
	profile := &fault.Profile{
		VMCrashPerHour:     2,
		TrackerHangPerHour: 4,
		BlockLossPerHour:   6,
		StragglerPerHour:   4,
		Horizon:            30 * time.Minute,
	}
	if profileSpec != "" {
		p, err := fault.ParseProfile(profileSpec)
		if err != nil {
			return err
		}
		profile = p
	}
	if faultSeed == 0 {
		faultSeed = seed + 2
	}
	var inv *invariant.Checker
	if checkInvariants {
		inv = invariant.New()
	}
	rig, err := testbed.New(testbed.Options{
		PMs:        8,
		VMsPerPM:   2,
		Seed:       seed,
		Policies:   policies,
		Tracer:     obs.tracer,
		Metrics:    obs.reg,
		Audit:      obs.log,
		TimeSeries: obs.ts,
		Invariants: inv,
		Faults: &fault.Options{
			Seed: faultSeed,
			// One guaranteed whole-machine crash mid-run, on top of
			// whatever the profile draws.
			Schedule: []fault.ScheduledFault{
				{At: 45 * time.Second, Kind: fault.PMCrash, Target: "pm-1"},
			},
			Profile: profile,
		},
	})
	if err != nil {
		return err
	}
	obs.watch(rig.Cluster)
	if obs.rec != nil {
		rig.OnAllJobsDone = obs.rec.Stop
	}
	results, err := rig.RunJobs([]mapred.JobSpec{
		workload.Sort().WithInputMB(2 * 1024),
		workload.Wcount().WithInputMB(1536),
		workload.DistGrep().WithInputMB(1024),
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "chaos run: seed %d, fault seed %d\n", seed, faultSeed)
	fmt.Fprintf(out, "faults injected: %s\n\n", rig.Faults.Summary())
	for _, r := range results {
		fmt.Fprintf(out, "  %-8s JCT %7.1fs  (map %.1fs, reduce %.1fs)\n",
			r.Name, r.JCT.Seconds(), r.MapPhase.Seconds(), r.ReducePhase.Seconds())
		obs.addJob(r.Name, r.CritPath)
	}
	under, lost := rig.FS.UnderReplicated(), rig.FS.LostBlocks()
	fmt.Fprintf(out, "\nDFS after recovery: %d under-replicated, %d lost\n", under, lost)
	if under != 0 {
		return fmt.Errorf("chaos: %d blocks still under-replicated after recovery", under)
	}
	if inv != nil {
		if vs := inv.Final(); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintf(out, "  INVARIANT %s\n", v)
			}
			return fmt.Errorf("chaos: %d safety-invariant violation(s)", len(vs))
		}
		fmt.Fprintln(out, "invariants: all held")
	}
	obs.snapPerf(rig.Perf)
	obs.simEnd = rig.Engine.Now()
	return nil
}

// runScaleUpPoint runs the scale sweep's weak-scaling scenario at one
// datacenter-scale operating point (-pms PMs, default the suite's
// 2500-PM smoke point) and prints its deterministic outcome plus the
// perfstat cost counters. The counter block is byte-identical across
// runs with the same seed and size; only the wall-time line varies.
func runScaleUpPoint(size int, seed int64, out io.Writer) error {
	res, wall, err := scalesweep.RunPoint(size, scalesweep.Options{Seed: seed})
	if err != nil {
		return err
	}
	eps := 0.0
	if wall.WallSeconds > 0 {
		eps = float64(res.EventsFired) / wall.WallSeconds
	}
	fmt.Fprintf(out, "scale-up point: %d PMs (seed %d)\n", res.Size, seed)
	fmt.Fprintf(out, "trackers:     %d\n", res.Trackers)
	fmt.Fprintf(out, "jobs:         %d (all completed)\n", res.Jobs)
	fmt.Fprintf(out, "events fired: %d\n", res.EventsFired)
	fmt.Fprintf(out, "wall time:    %.2fs (%.0f events/sec)\n", wall.WallSeconds, eps)
	names := make([]string, 0, len(res.Counters))
	for name := range res.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(out, "cost counters:")
	for _, name := range names {
		fmt.Fprintf(out, "  %-34s %d\n", name, res.Counters[name])
	}
	return nil
}

type jobOptions struct {
	bench         string
	dataGB        float64
	pms, vmsPerPM int
	dom0, split   bool
	slotCaps      bool
	sched         string
	// schedSet records whether -scheduler was passed explicitly; an
	// explicit choice wins over the -policy set's Phase II scheduler.
	schedSet bool
	policies *hybridmr.PolicySet
	seed     int64
}

// runJobs fans a comma-separated benchmark list across the experiment
// worker pool, each on its own seeded rig, and prints the reports in
// list order. Every run records through its own tracer, registry and
// decision log; with more than one benchmark, file outputs gain a
// per-benchmark suffix and the wall-clock throughput gauge is skipped
// (process-global event counts would mix concurrent engines).
func runJobs(benchList string, o jobOptions, parallel int, cfg obsConfig, throughput func() float64, out io.Writer) error {
	var benches []string
	for _, b := range strings.Split(benchList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			benches = append(benches, b)
		}
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark named")
	}
	if len(benches) == 1 {
		o.bench = benches[0]
		obs := newRunObs(cfg, "", o.seed)
		if err := runJob(o, obs, out); err != nil {
			return err
		}
		return obs.finish(out, throughput())
	}
	experiments.Parallelism = parallel
	reports, err := experiments.Map(len(benches), func(i int) (string, error) {
		run := o
		run.bench = benches[i]
		obs := newRunObs(cfg, "-"+benches[i], o.seed)
		var buf bytes.Buffer
		if err := runJob(run, obs, &buf); err != nil {
			return "", fmt.Errorf("%s: %w", benches[i], err)
		}
		if err := obs.finish(&buf, 0); err != nil {
			return "", fmt.Errorf("%s: %w", benches[i], err)
		}
		return buf.String(), nil
	})
	if err != nil {
		return err
	}
	for i, report := range reports {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprint(out, report)
	}
	return nil
}

// runJob is the original single-benchmark mode.
func runJob(o jobOptions, obs *runObs, out io.Writer) error {
	obs.title = "job: " + o.bench
	spec, err := workload.ByName(o.bench)
	if err != nil {
		return err
	}
	if o.dataGB > 0 {
		if spec.FixedMapWork > 0 {
			return fmt.Errorf("%s is a fixed-work benchmark; -data-gb does not apply", spec.Name)
		}
		spec = spec.WithInputMB(o.dataGB * workload.GB)
	}

	// A -policy set picks the Phase II scheduler unless -scheduler was
	// passed explicitly, which wins.
	var scheduler mapred.Scheduler
	if o.policies == nil || o.schedSet {
		switch o.sched {
		case "fair":
			scheduler = mapred.Fair{}
		case "fifo":
			scheduler = mapred.FIFO{}
		default:
			return fmt.Errorf("unknown scheduler %q", o.sched)
		}
	}
	mrCfg := mapred.Config{}
	if o.slotCaps {
		mrCfg.SlotCaps = mapred.DefaultSlotCaps()
	}
	rig, err := testbed.New(testbed.Options{
		PMs:          o.pms,
		VMsPerPM:     o.vmsPerPM,
		Dom0:         o.dom0,
		Split:        o.split,
		Seed:         o.seed,
		Policies:     o.policies,
		Scheduler:    scheduler,
		MapredConfig: mrCfg,
		Tracer:       obs.tracer,
		Metrics:      obs.reg,
		Audit:        obs.log,
		TimeSeries:   obs.ts,
	})
	if err != nil {
		return err
	}
	obs.watch(rig.Cluster)
	if obs.rec != nil {
		// Stop sampling when the job completes: the sampler's periodic
		// ticks would otherwise keep Engine.Run from ever draining.
		rig.OnAllJobsDone = obs.rec.Stop
	}
	res, err := rig.RunJob(spec)
	if err != nil {
		return err
	}
	obs.addJob(res.Name, res.CritPath)
	obs.snapPerf(rig.Perf)
	obs.simEnd = rig.Engine.Now()
	fmt.Fprintf(out, "benchmark:    %s\n", res.Name)
	fmt.Fprintf(out, "workers:      %d (%d PMs x %d VMs/PM)\n", len(rig.Workers), o.pms, o.vmsPerPM)
	fmt.Fprintf(out, "JCT:          %.1fs\n", res.JCT.Seconds())
	fmt.Fprintf(out, "map phase:    %.1fs\n", res.MapPhase.Seconds())
	fmt.Fprintf(out, "reduce phase: %.1fs\n", res.ReducePhase.Seconds())
	return nil
}

func vmByName(vms []*hybridmr.VM, name string) *hybridmr.VM {
	for _, vm := range vms {
		if vm.Name() == name {
			return vm
		}
	}
	return nil
}

func pmByName(pms []*hybridmr.PM, name string) *hybridmr.PM {
	for _, pm := range pms {
		if pm.Name() == name {
			return pm
		}
	}
	return nil
}
