// Command hybridmr-sim runs a single MapReduce benchmark on a chosen
// simulated cluster shape and reports the completion time and phase
// breakdown.
//
// Usage:
//
//	hybridmr-sim -benchmark Sort -data-gb 8 -pms 12 -vms-per-pm 2
//	hybridmr-sim -benchmark Kmeans -pms 24            # native cluster
//	hybridmr-sim -benchmark Sort -pms 24 -dom0        # Dom-0 mode
//	hybridmr-sim -benchmark Sort -pms 24 -vms-per-pm 2 -split
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mapred"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hybridmr-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hybridmr-sim", flag.ContinueOnError)
	bench := fs.String("benchmark", "Sort", "benchmark name (Twitter, Wcount, PiEst, DistGrep, Sort, Kmeans)")
	dataGB := fs.Float64("data-gb", 0, "input size in GB (0 = the paper's size for the benchmark)")
	pms := fs.Int("pms", 12, "physical machines")
	vmsPerPM := fs.Int("vms-per-pm", 0, "VMs per PM (0 = native execution)")
	dom0 := fs.Bool("dom0", false, "run native work in the privileged domain")
	split := fs.Bool("split", false, "split TaskTracker/DataNode architecture")
	slotCaps := fs.Bool("slot-caps", false, "static Hadoop slot containers")
	sched := fs.String("scheduler", "fair", "job scheduler: fair or fifo")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	if *dataGB > 0 {
		if spec.FixedMapWork > 0 {
			return fmt.Errorf("%s is a fixed-work benchmark; -data-gb does not apply", spec.Name)
		}
		spec = spec.WithInputMB(*dataGB * workload.GB)
	}

	var scheduler mapred.Scheduler
	switch *sched {
	case "fair":
		scheduler = mapred.Fair{}
	case "fifo":
		scheduler = mapred.FIFO{}
	default:
		return fmt.Errorf("unknown scheduler %q", *sched)
	}
	mrCfg := mapred.Config{}
	if *slotCaps {
		mrCfg.SlotCaps = mapred.DefaultSlotCaps()
	}
	rig, err := testbed.New(testbed.Options{
		PMs:          *pms,
		VMsPerPM:     *vmsPerPM,
		Dom0:         *dom0,
		Split:        *split,
		Seed:         *seed,
		Scheduler:    scheduler,
		MapredConfig: mrCfg,
	})
	if err != nil {
		return err
	}
	res, err := rig.RunJob(spec)
	if err != nil {
		return err
	}
	fmt.Printf("benchmark:    %s\n", res.Name)
	fmt.Printf("workers:      %d (%d PMs x %d VMs/PM)\n", len(rig.Workers), *pms, *vmsPerPM)
	fmt.Printf("JCT:          %.1fs\n", res.JCT.Seconds())
	fmt.Printf("map phase:    %.1fs\n", res.MapPhase.Seconds())
	fmt.Printf("reduce phase: %.1fs\n", res.ReducePhase.Seconds())
	return nil
}
