// Command hybridmr-sim drives the simulated hybrid data center and can
// record a structured trace of everything that happens inside it.
//
// Two modes:
//
//   - The default "quickstart" scenario assembles a hybrid cluster
//     (native + virtual partitions), deploys RUBiS, runs Sort and PiEst
//     through the two-phase scheduler, consolidates the VMs of one host
//     via live migration and powers the freed machine off — exercising
//     every traced subsystem in one run.
//   - "job" mode (selected with -scenario job, or implied by an explicit
//     -benchmark flag) runs a single MapReduce benchmark on a chosen
//     cluster shape, as before.
//   - "chaos" mode runs a batch of jobs on a virtual cluster while a
//     seed-deterministic fault injector crashes machines and VMs, wedges
//     TaskTrackers, corrupts DFS replicas and injects stragglers. The run
//     verifies that every job completes and the DFS heals back to target
//     replication, and prints the fault seed so any run can be replayed.
//
// Usage:
//
//	hybridmr-sim -trace out.json -trace-format chrome -metrics
//	hybridmr-sim -benchmark Sort -data-gb 8 -pms 12 -vms-per-pm 2
//	hybridmr-sim -benchmark Kmeans -pms 24            # native cluster
//	hybridmr-sim -benchmark Sort -pms 24 -dom0        # Dom-0 mode
//	hybridmr-sim -benchmark Sort -pms 24 -vms-per-pm 2 -split
//	hybridmr-sim -benchmark Sort,Kmeans,Wcount -parallel 3
//	hybridmr-sim -scenario chaos -seed 7 -fault-seed 99
//	hybridmr-sim -scenario chaos -faults pm-crash=4,block-loss=12,repair-sec=90
//
// Job mode accepts a comma-separated benchmark list; each benchmark runs
// as its own seeded simulation, fanned across -parallel worker goroutines
// (default GOMAXPROCS) with reports printed in list order, so the output
// does not depend on the worker count. -trace and -metrics require a
// single benchmark, since both would interleave events from concurrent
// engines.
//
// The trace file loads directly into Perfetto (ui.perfetto.dev) or
// chrome://tracing when written in the default chrome format; -trace-format
// jsonl writes one JSON event per line for ad-hoc processing. Traces
// contain only simulated timestamps, so two runs with the same seed
// produce byte-identical files.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	hybridmr "repro"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/mapred"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridmr-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hybridmr-sim", flag.ContinueOnError)
	scenario := fs.String("scenario", "", "scenario: quickstart (default) or job")
	bench := fs.String("benchmark", "Sort", "benchmark name or comma-separated list (Twitter, Wcount, PiEst, DistGrep, Sort, Kmeans)")
	parallel := fs.Int("parallel", 0, "worker goroutines for a multi-benchmark job list (0 = GOMAXPROCS)")
	dataGB := fs.Float64("data-gb", 0, "input size in GB (0 = the paper's size for the benchmark)")
	pms := fs.Int("pms", 12, "physical machines (job mode)")
	vmsPerPM := fs.Int("vms-per-pm", 0, "VMs per PM (0 = native execution; job mode)")
	dom0 := fs.Bool("dom0", false, "run native work in the privileged domain")
	split := fs.Bool("split", false, "split TaskTracker/DataNode architecture")
	slotCaps := fs.Bool("slot-caps", false, "static Hadoop slot containers")
	sched := fs.String("scheduler", "fair", "job scheduler: fair or fifo")
	seed := fs.Int64("seed", 1, "simulation seed")
	faults := fs.String("faults", "", "chaos profile, e.g. pm-crash=2,vm-crash=4,block-loss=6 (chaos scenario; default moderate profile)")
	faultSeed := fs.Int64("fault-seed", 0, "fault injection seed (0 = derive from -seed)")
	traceFile := fs.String("trace", "", "write a structured event trace to this file")
	traceFormat := fs.String("trace-format", "chrome", "trace encoding: chrome (Perfetto-loadable) or jsonl")
	metricsOn := fs.Bool("metrics", false, "print the metrics registry after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// An explicit -benchmark keeps the pre-scenario CLI working: it
	// implies job mode unless the user also picked a scenario.
	mode := *scenario
	if mode == "" {
		mode = "quickstart"
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "benchmark" {
				mode = "job"
			}
		})
	}

	var tracer *trace.Tracer
	var reg *trace.Registry
	if *traceFile != "" {
		tracer = trace.New(nil)
	}
	if *metricsOn || *traceFile != "" {
		reg = trace.NewRegistry()
	}

	firedBefore := sim.ProcessEvents()
	wallStart := time.Now()

	var err error
	switch mode {
	case "quickstart":
		err = runQuickstart(*seed, tracer, reg, out)
	case "job":
		err = runJobs(*bench, jobOptions{
			dataGB: *dataGB, pms: *pms, vmsPerPM: *vmsPerPM,
			dom0: *dom0, split: *split, slotCaps: *slotCaps, sched: *sched, seed: *seed,
		}, *parallel, tracer, reg, out)
	case "chaos":
		err = runChaos(*seed, *faultSeed, *faults, tracer, reg, out)
	default:
		return fmt.Errorf("unknown scenario %q (quickstart, job or chaos)", mode)
	}
	if err != nil {
		return err
	}

	// Wall-clock throughput goes to the registry only — never into the
	// trace file, which must stay deterministic across runs.
	if wall := time.Since(wallStart).Seconds(); wall > 0 {
		reg.Gauge("engine.events_per_sec").Set(float64(sim.ProcessEvents()-firedBefore) / wall)
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		if err := tracer.Write(f, trace.ExportFormat(*traceFormat)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace: %d events -> %s (%s format)\n", tracer.Len(), *traceFile, *traceFormat)
	}
	if *metricsOn {
		fmt.Fprintf(out, "\nmetrics:\n")
		reg.Fprint(out)
	}
	return nil
}

// runQuickstart exercises every traced subsystem: hybrid placement, task
// execution with data locality, interactive-service SLA monitoring, live
// VM migration and PM power management.
func runQuickstart(seed int64, tracer *trace.Tracer, reg *trace.Registry, out io.Writer) error {
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      4,
		VirtualHostPMs: 4,
		VMsPerHost:     2,
		Seed:           seed,
		Tracer:         tracer,
		Metrics:        reg,
	})
	if err != nil {
		return err
	}
	defer dc.Close()

	svc, err := dc.DeployService(hybridmr.RUBiS())
	if err != nil {
		return err
	}
	svc.SetClients(1500)

	type submitted struct {
		job       *hybridmr.Job
		placement hybridmr.Placement
	}
	var jobs []submitted
	for _, spec := range []hybridmr.JobSpec{
		hybridmr.Sort().WithInputMB(2 * 1024),
		hybridmr.PiEst(),
	} {
		job, placement, err := dc.SubmitJob(spec, 0, nil)
		if err != nil {
			return err
		}
		jobs = append(jobs, submitted{job, placement})
	}
	dc.RunFor(10 * time.Minute)

	// Consolidate: pm-1's two worker VMs move to pm-2 and pm-3, then the
	// emptied machine powers down.
	var migErr error
	for _, move := range []struct{ vm, pm string }{{"vm-1", "pm-2"}, {"vm-5", "pm-3"}} {
		vm := vmByName(dc.VMs, move.vm)
		pm := pmByName(dc.HostPMs, move.pm)
		if vm == nil || pm == nil {
			return fmt.Errorf("quickstart: %s or %s not found", move.vm, move.pm)
		}
		if err := dc.Cluster.Migrate(vm, pm, func(st hybridmr.MigrationStats) {
			fmt.Fprintf(out, "migrated %-5s %s -> %s in %.1fs (downtime %.2fs, %.0f MB moved)\n",
				st.VM, st.From, st.To, st.TotalTime.Seconds(), st.Downtime.Seconds(), st.TransferredMB)
		}); err != nil {
			migErr = err
		}
	}
	if migErr != nil {
		return migErr
	}
	dc.RunFor(2 * time.Minute)

	if pm := pmByName(dc.HostPMs, "pm-1"); pm != nil {
		if err := pm.PowerOff(); err != nil {
			return fmt.Errorf("quickstart: power off pm-1: %w", err)
		}
		fmt.Fprintf(out, "powered off pm-1 (%d/%d PMs on)\n",
			dc.Cluster.PoweredOnPMs(), len(dc.Cluster.PMs()))
	}
	dc.RunFor(8 * time.Minute)

	fmt.Fprintf(out, "\nquickstart after %s simulated:\n", dc.Now())
	for _, s := range jobs {
		status := "running"
		if s.job.Done() {
			status = fmt.Sprintf("done, JCT %.1fs", s.job.JCT().Seconds())
		}
		fmt.Fprintf(out, "  %-8s -> %-7s partition  (%s)\n", s.job.Spec.Name, s.placement, status)
	}
	fmt.Fprintf(out, "  RUBiS    -> %.0f ms mean response (%d clients)\n",
		svc.LatencyMs(), svc.Clients())
	return nil
}

// runChaos runs a batch of jobs on a virtual cluster under fault
// injection: a scheduled PM crash mid-run plus rate-based chaos of every
// other kind, all drawn from the fault seed. It verifies end-to-end
// recovery — every job completes and the DFS heals back to target
// replication — and prints the seeds needed to replay the run.
func runChaos(seed, faultSeed int64, profileSpec string, tracer *trace.Tracer, reg *trace.Registry, out io.Writer) error {
	profile := &fault.Profile{
		VMCrashPerHour:     2,
		TrackerHangPerHour: 4,
		BlockLossPerHour:   6,
		StragglerPerHour:   4,
		Horizon:            30 * time.Minute,
	}
	if profileSpec != "" {
		p, err := fault.ParseProfile(profileSpec)
		if err != nil {
			return err
		}
		profile = p
	}
	if faultSeed == 0 {
		faultSeed = seed + 2
	}
	rig, err := testbed.New(testbed.Options{
		PMs:      8,
		VMsPerPM: 2,
		Seed:     seed,
		Tracer:   tracer,
		Metrics:  reg,
		Faults: &fault.Options{
			Seed: faultSeed,
			// One guaranteed whole-machine crash mid-run, on top of
			// whatever the profile draws.
			Schedule: []fault.ScheduledFault{
				{At: 45 * time.Second, Kind: fault.PMCrash, Target: "pm-1"},
			},
			Profile: profile,
		},
	})
	if err != nil {
		return err
	}
	results, err := rig.RunJobs([]mapred.JobSpec{
		workload.Sort().WithInputMB(2 * 1024),
		workload.Wcount().WithInputMB(1536),
		workload.DistGrep().WithInputMB(1024),
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "chaos run: seed %d, fault seed %d\n", seed, faultSeed)
	fmt.Fprintf(out, "faults injected: %s\n\n", rig.Faults.Summary())
	for _, r := range results {
		fmt.Fprintf(out, "  %-8s JCT %7.1fs  (map %.1fs, reduce %.1fs)\n",
			r.Name, r.JCT.Seconds(), r.MapPhase.Seconds(), r.ReducePhase.Seconds())
	}
	under, lost := rig.FS.UnderReplicated(), rig.FS.LostBlocks()
	fmt.Fprintf(out, "\nDFS after recovery: %d under-replicated, %d lost\n", under, lost)
	if under != 0 {
		return fmt.Errorf("chaos: %d blocks still under-replicated after recovery", under)
	}
	return nil
}

type jobOptions struct {
	bench         string
	dataGB        float64
	pms, vmsPerPM int
	dom0, split   bool
	slotCaps      bool
	sched         string
	seed          int64
}

// runJobs fans a comma-separated benchmark list across the experiment
// worker pool, each on its own seeded rig, and prints the reports in
// list order. Tracing and metrics stay single-benchmark: both record
// into shared state that concurrent engines would interleave.
func runJobs(benchList string, o jobOptions, parallel int, tracer *trace.Tracer, reg *trace.Registry, out io.Writer) error {
	var benches []string
	for _, b := range strings.Split(benchList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			benches = append(benches, b)
		}
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark named")
	}
	if len(benches) == 1 {
		o.bench = benches[0]
		return runJob(o, tracer, reg, out)
	}
	if tracer != nil {
		return fmt.Errorf("-trace requires a single benchmark (got %d)", len(benches))
	}
	if reg != nil {
		return fmt.Errorf("-metrics requires a single benchmark (got %d)", len(benches))
	}
	experiments.Parallelism = parallel
	reports, err := experiments.Map(len(benches), func(i int) (string, error) {
		run := o
		run.bench = benches[i]
		var buf bytes.Buffer
		if err := runJob(run, nil, nil, &buf); err != nil {
			return "", fmt.Errorf("%s: %w", benches[i], err)
		}
		return buf.String(), nil
	})
	if err != nil {
		return err
	}
	for i, report := range reports {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprint(out, report)
	}
	return nil
}

// runJob is the original single-benchmark mode.
func runJob(o jobOptions, tracer *trace.Tracer, reg *trace.Registry, out io.Writer) error {
	spec, err := workload.ByName(o.bench)
	if err != nil {
		return err
	}
	if o.dataGB > 0 {
		if spec.FixedMapWork > 0 {
			return fmt.Errorf("%s is a fixed-work benchmark; -data-gb does not apply", spec.Name)
		}
		spec = spec.WithInputMB(o.dataGB * workload.GB)
	}

	var scheduler mapred.Scheduler
	switch o.sched {
	case "fair":
		scheduler = mapred.Fair{}
	case "fifo":
		scheduler = mapred.FIFO{}
	default:
		return fmt.Errorf("unknown scheduler %q", o.sched)
	}
	mrCfg := mapred.Config{}
	if o.slotCaps {
		mrCfg.SlotCaps = mapred.DefaultSlotCaps()
	}
	rig, err := testbed.New(testbed.Options{
		PMs:          o.pms,
		VMsPerPM:     o.vmsPerPM,
		Dom0:         o.dom0,
		Split:        o.split,
		Seed:         o.seed,
		Scheduler:    scheduler,
		MapredConfig: mrCfg,
		Tracer:       tracer,
		Metrics:      reg,
	})
	if err != nil {
		return err
	}
	res, err := rig.RunJob(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchmark:    %s\n", res.Name)
	fmt.Fprintf(out, "workers:      %d (%d PMs x %d VMs/PM)\n", len(rig.Workers), o.pms, o.vmsPerPM)
	fmt.Fprintf(out, "JCT:          %.1fs\n", res.JCT.Seconds())
	fmt.Fprintf(out, "map phase:    %.1fs\n", res.MapPhase.Seconds())
	fmt.Fprintf(out, "reduce phase: %.1fs\n", res.ReducePhase.Seconds())
	return nil
}

func vmByName(vms []*hybridmr.VM, name string) *hybridmr.VM {
	for _, vm := range vms {
		if vm.Name() == name {
			return vm
		}
	}
	return nil
}

func pmByName(pms []*hybridmr.PM, name string) *hybridmr.PM {
	for _, pm := range pms {
		if pm.Name() == name {
			return pm
		}
	}
	return nil
}
