package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runToTrace runs the quickstart scenario writing a trace, and returns
// the trace bytes.
func runToTrace(t *testing.T, name, format string) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var out bytes.Buffer
	args := []string{"-trace", path, "-trace-format", format, "-seed", "7"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	return data
}

func TestQuickstartChromeTraceIsValidAndComplete(t *testing.T) {
	data := runToTrace(t, "trace.json", "chrome")

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	// The quickstart must exercise every traced subsystem.
	cats := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Cat != "" {
			cats[e.Cat] = true
		}
	}
	for _, want := range []string{"job", "task", "migration", "power", "placement", "dfs"} {
		if !cats[want] {
			t.Errorf("trace lacks any %q events (have %v)", want, cats)
		}
	}

	// Spans for specific expected activity.
	sawMigration, sawPowerOff, sawAttempt := false, false, false
	for _, e := range doc.TraceEvents {
		switch {
		case e.Cat == "migration" && e.Ph == "X" && e.Name == "migrate":
			sawMigration = true
		case e.Cat == "power" && e.Name == "powered-off":
			sawPowerOff = true
		case e.Cat == "task" && e.Ph == "X":
			sawAttempt = true
		}
	}
	if !sawMigration {
		t.Error("no completed VM-migration span")
	}
	if !sawPowerOff {
		t.Error("no PM powered-off span")
	}
	if !sawAttempt {
		t.Error("no task-attempt span")
	}
}

func TestQuickstartTraceIsDeterministic(t *testing.T) {
	for _, format := range []string{"chrome", "jsonl"} {
		a := runToTrace(t, "a-"+format, format)
		b := runToTrace(t, "b-"+format, format)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two same-seed runs produced different traces (%d vs %d bytes)",
				format, len(a), len(b))
		}
	}
}

func TestQuickstartJSONLLinesParse(t *testing.T) {
	data := runToTrace(t, "trace.jsonl", "jsonl")
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		t.Fatal("jsonl trace is empty")
	}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		if _, ok := ev["type"]; !ok {
			t.Fatalf("line %d lacks a type field: %s", i+1, line)
		}
	}
}

func TestMetricsSummaryIncludesEngineThroughput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-metrics", "-seed", "7"}, &out); err != nil {
		t.Fatalf("run -metrics: %v", err)
	}
	for _, want := range []string{
		"metrics:",
		"engine.events_per_sec",
		"mapred.task.slot_wait_sec",
		"cluster.migration.downtime_sec",
		"dfs.reads.node_local",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("metrics summary lacks %q:\n%s", want, out.String())
		}
	}
}

func TestJobModeStillWorks(t *testing.T) {
	var out bytes.Buffer
	// Explicit -benchmark implies job mode even without -scenario.
	if err := run([]string{"-benchmark", "PiEst", "-pms", "4"}, &out); err != nil {
		t.Fatalf("job mode: %v", err)
	}
	if !strings.Contains(out.String(), "benchmark:    PiEst") {
		t.Errorf("job mode output missing benchmark line:\n%s", out.String())
	}
}

// TestMultiBenchmarkJobListIsDeterministic pins the fan-out contract:
// a comma-separated benchmark list prints the same report bytes at any
// worker count, in list order, matching the serial single-benchmark runs.
func TestMultiBenchmarkJobListIsDeterministic(t *testing.T) {
	render := func(parallel string) string {
		t.Helper()
		var out bytes.Buffer
		args := []string{"-benchmark", "PiEst,Wcount,Kmeans", "-pms", "4", "-parallel", parallel}
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return out.String()
	}
	serial := render("1")
	parallel := render("8")
	if serial != parallel {
		t.Errorf("job-list output differs between -parallel 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	// Reports come back in list order, separated by blank lines, and each
	// matches what a standalone run of that benchmark prints.
	var want strings.Builder
	for i, bench := range []string{"PiEst", "Wcount", "Kmeans"} {
		if i > 0 {
			want.WriteString("\n")
		}
		var one bytes.Buffer
		if err := run([]string{"-benchmark", bench, "-pms", "4"}, &one); err != nil {
			t.Fatalf("single %s: %v", bench, err)
		}
		want.WriteString(one.String())
	}
	if serial != want.String() {
		t.Errorf("job-list output does not match concatenated single runs:\n--- list ---\n%s\n--- singles ---\n%s", serial, want.String())
	}
}

func TestMultiBenchmarkRejectsTraceAndMetrics(t *testing.T) {
	var out bytes.Buffer
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run([]string{"-benchmark", "PiEst,Wcount", "-trace", path}, &out); err == nil ||
		!strings.Contains(err.Error(), "single benchmark") {
		t.Errorf("-trace with a benchmark list: err = %v, want single-benchmark error", err)
	}
	if err := run([]string{"-benchmark", "PiEst,Wcount", "-metrics"}, &out); err == nil ||
		!strings.Contains(err.Error(), "single benchmark") {
		t.Errorf("-metrics with a benchmark list: err = %v, want single-benchmark error", err)
	}
}

func TestUnknownScenarioRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "nope"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestChaosScenarioCompletesAndReports(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "chaos", "-seed", "7", "-fault-seed", "99"}, &out); err != nil {
		t.Fatalf("chaos scenario: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"chaos run: seed 7, fault seed 99",
		"faults injected:",
		"pm-crash=",
		"0 under-replicated",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("chaos output lacks %q:\n%s", want, out.String())
		}
	}
}

// TestChaosTraceIsDeterministic: two same-seed chaos runs (jobs plus
// fault injection) emit byte-identical JSONL traces. This is the unit
// form of the CI determinism gate.
func TestChaosTraceIsDeterministic(t *testing.T) {
	runChaosTrace := func(name string) []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		var out bytes.Buffer
		args := []string{"-scenario", "chaos", "-seed", "7", "-fault-seed", "99",
			"-trace", path, "-trace-format", "jsonl"}
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := runChaosTrace("a.jsonl")
	b := runChaosTrace("b.jsonl")
	if !bytes.Equal(a, b) {
		t.Errorf("two same-seed chaos runs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
}

func TestChaosBadProfileRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "chaos", "-faults", "bogus=1"}, &out); err == nil {
		t.Fatal("invalid -faults profile accepted")
	}
}
