package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runToTrace runs the quickstart scenario writing a trace, and returns
// the trace bytes.
func runToTrace(t *testing.T, name, format string) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var out bytes.Buffer
	args := []string{"-trace", path, "-trace-format", format, "-seed", "7"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	return data
}

func TestQuickstartChromeTraceIsValidAndComplete(t *testing.T) {
	data := runToTrace(t, "trace.json", "chrome")

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	// The quickstart must exercise every traced subsystem.
	cats := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Cat != "" {
			cats[e.Cat] = true
		}
	}
	for _, want := range []string{"job", "task", "migration", "power", "placement", "dfs"} {
		if !cats[want] {
			t.Errorf("trace lacks any %q events (have %v)", want, cats)
		}
	}

	// Spans for specific expected activity.
	sawMigration, sawPowerOff, sawAttempt := false, false, false
	for _, e := range doc.TraceEvents {
		switch {
		case e.Cat == "migration" && e.Ph == "X" && e.Name == "migrate":
			sawMigration = true
		case e.Cat == "power" && e.Name == "powered-off":
			sawPowerOff = true
		case e.Cat == "task" && e.Ph == "X":
			sawAttempt = true
		}
	}
	if !sawMigration {
		t.Error("no completed VM-migration span")
	}
	if !sawPowerOff {
		t.Error("no PM powered-off span")
	}
	if !sawAttempt {
		t.Error("no task-attempt span")
	}
}

func TestQuickstartTraceIsDeterministic(t *testing.T) {
	for _, format := range []string{"chrome", "jsonl"} {
		a := runToTrace(t, "a-"+format, format)
		b := runToTrace(t, "b-"+format, format)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two same-seed runs produced different traces (%d vs %d bytes)",
				format, len(a), len(b))
		}
	}
}

func TestQuickstartJSONLLinesParse(t *testing.T) {
	data := runToTrace(t, "trace.jsonl", "jsonl")
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		t.Fatal("jsonl trace is empty")
	}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		if _, ok := ev["type"]; !ok {
			t.Fatalf("line %d lacks a type field: %s", i+1, line)
		}
	}
}

func TestMetricsSummaryIncludesEngineThroughput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-metrics", "-seed", "7"}, &out); err != nil {
		t.Fatalf("run -metrics: %v", err)
	}
	for _, want := range []string{
		"metrics:",
		"engine.events_per_sec",
		"mapred.task.slot_wait_sec",
		"cluster.migration.downtime_sec",
		"dfs.reads.node_local",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("metrics summary lacks %q:\n%s", want, out.String())
		}
	}
}

func TestJobModeStillWorks(t *testing.T) {
	var out bytes.Buffer
	// Explicit -benchmark implies job mode even without -scenario.
	if err := run([]string{"-benchmark", "PiEst", "-pms", "4"}, &out); err != nil {
		t.Fatalf("job mode: %v", err)
	}
	if !strings.Contains(out.String(), "benchmark:    PiEst") {
		t.Errorf("job mode output missing benchmark line:\n%s", out.String())
	}
}

// TestMultiBenchmarkJobListIsDeterministic pins the fan-out contract:
// a comma-separated benchmark list prints the same report bytes at any
// worker count, in list order, matching the serial single-benchmark runs.
func TestMultiBenchmarkJobListIsDeterministic(t *testing.T) {
	render := func(parallel string) string {
		t.Helper()
		var out bytes.Buffer
		args := []string{"-benchmark", "PiEst,Wcount,Kmeans", "-pms", "4", "-parallel", parallel}
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return out.String()
	}
	serial := render("1")
	parallel := render("8")
	if serial != parallel {
		t.Errorf("job-list output differs between -parallel 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	// Reports come back in list order, separated by blank lines, and each
	// matches what a standalone run of that benchmark prints.
	var want strings.Builder
	for i, bench := range []string{"PiEst", "Wcount", "Kmeans"} {
		if i > 0 {
			want.WriteString("\n")
		}
		var one bytes.Buffer
		if err := run([]string{"-benchmark", bench, "-pms", "4"}, &one); err != nil {
			t.Fatalf("single %s: %v", bench, err)
		}
		want.WriteString(one.String())
	}
	if serial != want.String() {
		t.Errorf("job-list output does not match concatenated single runs:\n--- list ---\n%s\n--- singles ---\n%s", serial, want.String())
	}
}

// TestMultiBenchmarkSuffixedOutputs pins the job-list observability
// contract: every benchmark in the list records through its own tracer,
// registry and decision log, file outputs gain a per-benchmark suffix,
// and each suffixed file matches the one a standalone run writes.
func TestMultiBenchmarkSuffixedOutputs(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-benchmark", "PiEst,Wcount", "-pms", "4", "-parallel", "2",
		"-trace", filepath.Join(dir, "t.json"), "-trace-format", "jsonl",
		"-audit", filepath.Join(dir, "a.jsonl"),
		"-report", filepath.Join(dir, "r.html"),
		"-metrics"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
	}
	for _, bench := range []string{"PiEst", "Wcount"} {
		for _, name := range []string{"t-" + bench + ".json", "a-" + bench + ".jsonl", "r-" + bench + ".html"} {
			if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() == 0 {
				t.Errorf("missing or empty %s: %v", name, err)
			}
		}
	}
	if n := strings.Count(out.String(), "metrics:"); n != 2 {
		t.Errorf("want one metrics section per benchmark, got %d", n)
	}

	// The suffixed audit log is byte-identical to a standalone run's.
	single := t.TempDir()
	if err := run([]string{"-benchmark", "PiEst", "-pms", "4",
		"-audit", filepath.Join(single, "a.jsonl")}, &bytes.Buffer{}); err != nil {
		t.Fatalf("single PiEst: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(single, "a.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "a-PiEst.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("a-PiEst.jsonl from the list run differs from a standalone PiEst run")
	}
}

// TestAuditExportIsDeterministicAcrossWorkerCounts: the decision logs a
// benchmark list writes do not depend on -parallel.
func TestAuditExportIsDeterministicAcrossWorkerCounts(t *testing.T) {
	render := func(parallel string) map[string][]byte {
		t.Helper()
		dir := t.TempDir()
		args := []string{"-benchmark", "PiEst,Wcount,Kmeans", "-pms", "4",
			"-parallel", parallel, "-audit", filepath.Join(dir, "a.jsonl")}
		if err := run(args, &bytes.Buffer{}); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		files := map[string][]byte{}
		for _, bench := range []string{"PiEst", "Wcount", "Kmeans"} {
			data, err := os.ReadFile(filepath.Join(dir, "a-"+bench+".jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Fatalf("a-%s.jsonl is empty", bench)
			}
			files[bench] = data
		}
		return files
	}
	serial, parallel := render("1"), render("8")
	for bench, want := range serial {
		if !bytes.Equal(parallel[bench], want) {
			t.Errorf("%s audit log differs between -parallel 1 and 8", bench)
		}
	}
}

// TestQuickstartReportIsDeterministicAndComplete: two same-seed
// quickstart runs write byte-identical observatory reports, and the
// report renders every view with no external assets.
func TestQuickstartReportIsDeterministicAndComplete(t *testing.T) {
	render := func(name string) []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		var out bytes.Buffer
		args := []string{"-seed", "7", "-report", path}
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := render("a.html")
	b := render("b.html")
	if !bytes.Equal(a, b) {
		t.Errorf("two same-seed reports differ (%d vs %d bytes)", len(a), len(b))
	}
	html := string(a)
	for _, want := range []string{
		"Utilization &amp; power timeline",
		"Placement &amp; migration swimlane",
		"Per-job critical paths",
		"Scheduler decision audit log",
		"<polyline", // recorded samples rendered
		"phase1",    // placement decisions present
		"makespan",  // at least one job profiled
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "src="} {
		if strings.Contains(html, banned) {
			t.Errorf("report references external asset %q", banned)
		}
	}
}

// TestQuickstartAuditJSONLParsesAndIsDeterministic: the exported
// decision log is valid JSONL with the pinned schema, identical across
// same-seed runs, and covers the subsystems the quickstart exercises.
func TestQuickstartAuditJSONLParsesAndIsDeterministic(t *testing.T) {
	render := func(name string) []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		var out bytes.Buffer
		if err := run([]string{"-seed", "7", "-audit", path}, &out); err != nil {
			t.Fatalf("run -audit: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := render("a.jsonl")
	if b := render("b.jsonl"); !bytes.Equal(a, b) {
		t.Error("two same-seed audit exports differ")
	}
	subsystems := map[string]bool{}
	lines := strings.Split(strings.TrimSpace(string(a)), "\n")
	for i, line := range lines {
		var rec struct {
			Seq       uint64 `json:"seq"`
			Subsystem string `json:"subsystem"`
			Action    string `json:"action"`
			Decision  string `json:"decision"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("line %d has seq %d, want %d", i+1, rec.Seq, i+1)
		}
		subsystems[rec.Subsystem] = true
	}
	for _, want := range []string{"phase1", "mapred", "cluster"} {
		if !subsystems[want] {
			t.Errorf("audit log lacks any %q decisions (have %v)", want, subsystems)
		}
	}
}

func TestUnknownScenarioRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "nope"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestChaosScenarioCompletesAndReports(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "chaos", "-seed", "7", "-fault-seed", "99"}, &out); err != nil {
		t.Fatalf("chaos scenario: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"chaos run: seed 7, fault seed 99",
		"faults injected:",
		"pm-crash=",
		"0 under-replicated",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("chaos output lacks %q:\n%s", want, out.String())
		}
	}
}

// TestChaosTraceIsDeterministic: two same-seed chaos runs (jobs plus
// fault injection) emit byte-identical JSONL traces. This is the unit
// form of the CI determinism gate.
func TestChaosTraceIsDeterministic(t *testing.T) {
	runChaosTrace := func(name string) []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		var out bytes.Buffer
		args := []string{"-scenario", "chaos", "-seed", "7", "-fault-seed", "99",
			"-trace", path, "-trace-format", "jsonl"}
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := runChaosTrace("a.jsonl")
	b := runChaosTrace("b.jsonl")
	if !bytes.Equal(a, b) {
		t.Errorf("two same-seed chaos runs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
}

func TestChaosBadProfileRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "chaos", "-faults", "bogus=1"}, &out); err == nil {
		t.Fatal("invalid -faults profile accepted")
	}
}
